// Package atomicops provides the lock-free update operations behind the
// OpenMP atomic construct: integer and floating-point add/min/max/bitwise
// ops, plus capture forms (fetch-and-op) that the `atomic capture` directive
// lowers to.
//
// Integer types map directly onto sync/atomic. Floating-point updates, which
// hardware and libomp implement as compare-and-swap loops on the bit
// patterns, are implemented the same way here via math.Float64bits. Float64
// and Float32 are dedicated types rather than unsafe pointer casts so that
// user code stays race-detector clean.
package atomicops

import (
	"math"
	"sync/atomic"
)

// Int64 is an int64 cell supporting the OpenMP atomic update operations.
type Int64 struct{ v atomic.Int64 }

// Load returns the current value.
func (a *Int64) Load() int64 { return a.v.Load() }

// Store sets the value (atomic write).
func (a *Int64) Store(x int64) { a.v.Store(x) }

// Add performs v += x and returns the new value.
func (a *Int64) Add(x int64) int64 { return a.v.Add(x) }

// Sub performs v -= x and returns the new value.
func (a *Int64) Sub(x int64) int64 { return a.v.Add(-x) }

// Min performs v = min(v, x) and returns the value *before* the update
// (the capture form used by `atomic capture`).
func (a *Int64) Min(x int64) int64 {
	for {
		old := a.v.Load()
		if x >= old || a.v.CompareAndSwap(old, x) {
			return old
		}
	}
}

// Max performs v = max(v, x) and returns the value before the update.
func (a *Int64) Max(x int64) int64 {
	for {
		old := a.v.Load()
		if x <= old || a.v.CompareAndSwap(old, x) {
			return old
		}
	}
}

// And performs v &= x and returns the value before the update.
func (a *Int64) And(x int64) int64 {
	for {
		old := a.v.Load()
		if a.v.CompareAndSwap(old, old&x) {
			return old
		}
	}
}

// Or performs v |= x and returns the value before the update.
func (a *Int64) Or(x int64) int64 {
	for {
		old := a.v.Load()
		if a.v.CompareAndSwap(old, old|x) {
			return old
		}
	}
}

// Xor performs v ^= x and returns the value before the update.
func (a *Int64) Xor(x int64) int64 {
	for {
		old := a.v.Load()
		if a.v.CompareAndSwap(old, old^x) {
			return old
		}
	}
}

// CompareAndSwap has standard CAS semantics.
func (a *Int64) CompareAndSwap(old, new int64) bool { return a.v.CompareAndSwap(old, new) }

// Uint64 is a uint64 cell supporting atomic update operations.
type Uint64 struct{ v atomic.Uint64 }

// Load returns the current value.
func (a *Uint64) Load() uint64 { return a.v.Load() }

// Store sets the value.
func (a *Uint64) Store(x uint64) { a.v.Store(x) }

// Add performs v += x and returns the new value.
func (a *Uint64) Add(x uint64) uint64 { return a.v.Add(x) }

// Max performs v = max(v, x) and returns the value before the update.
func (a *Uint64) Max(x uint64) uint64 {
	for {
		old := a.v.Load()
		if x <= old || a.v.CompareAndSwap(old, x) {
			return old
		}
	}
}

// Min performs v = min(v, x) and returns the value before the update.
func (a *Uint64) Min(x uint64) uint64 {
	for {
		old := a.v.Load()
		if x >= old || a.v.CompareAndSwap(old, x) {
			return old
		}
	}
}

// Float64 is a float64 cell whose updates are CAS loops on the bit pattern,
// exactly how libomp implements `#pragma omp atomic` on doubles.
type Float64 struct{ bits atomic.Uint64 }

// Load returns the current value.
func (a *Float64) Load() float64 { return math.Float64frombits(a.bits.Load()) }

// Store sets the value.
func (a *Float64) Store(x float64) { a.bits.Store(math.Float64bits(x)) }

// Add performs v += x and returns the new value.
func (a *Float64) Add(x float64) float64 {
	for {
		oldBits := a.bits.Load()
		newVal := math.Float64frombits(oldBits) + x
		if a.bits.CompareAndSwap(oldBits, math.Float64bits(newVal)) {
			return newVal
		}
	}
}

// Mul performs v *= x and returns the new value.
func (a *Float64) Mul(x float64) float64 {
	for {
		oldBits := a.bits.Load()
		newVal := math.Float64frombits(oldBits) * x
		if a.bits.CompareAndSwap(oldBits, math.Float64bits(newVal)) {
			return newVal
		}
	}
}

// Min performs v = min(v, x) and returns the value before the update.
func (a *Float64) Min(x float64) float64 {
	for {
		oldBits := a.bits.Load()
		old := math.Float64frombits(oldBits)
		if x >= old || a.bits.CompareAndSwap(oldBits, math.Float64bits(x)) {
			return old
		}
	}
}

// Max performs v = max(v, x) and returns the value before the update.
func (a *Float64) Max(x float64) float64 {
	for {
		oldBits := a.bits.Load()
		old := math.Float64frombits(oldBits)
		if x <= old || a.bits.CompareAndSwap(oldBits, math.Float64bits(x)) {
			return old
		}
	}
}

// Float32 is the float32 analog of Float64.
type Float32 struct{ bits atomic.Uint32 }

// Load returns the current value.
func (a *Float32) Load() float32 { return math.Float32frombits(a.bits.Load()) }

// Store sets the value.
func (a *Float32) Store(x float32) { a.bits.Store(math.Float32bits(x)) }

// Add performs v += x and returns the new value.
func (a *Float32) Add(x float32) float32 {
	for {
		oldBits := a.bits.Load()
		newVal := math.Float32frombits(oldBits) + x
		if a.bits.CompareAndSwap(oldBits, math.Float32bits(newVal)) {
			return newVal
		}
	}
}

// Bool is an atomic boolean used by `atomic write`/`atomic read` on flags.
type Bool struct{ v atomic.Bool }

// Load returns the current value.
func (a *Bool) Load() bool { return a.v.Load() }

// Store sets the value.
func (a *Bool) Store(x bool) { a.v.Store(x) }

// Or performs v = v || x and returns the value before the update.
func (a *Bool) Or(x bool) bool {
	if !x {
		return a.v.Load()
	}
	return a.v.Swap(true)
}

// And performs v = v && x and returns the value before the update.
func (a *Bool) And(x bool) bool {
	if x {
		return a.v.Load()
	}
	return a.v.Swap(false)
}
