package atomicops

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

const nGoroutines = 8

// hammer runs fn concurrently from nGoroutines goroutines, iters each.
func hammer(iters int, fn func(g, i int)) {
	var wg sync.WaitGroup
	for g := 0; g < nGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				fn(g, i)
			}
		}(g)
	}
	wg.Wait()
}

func TestInt64AddConcurrent(t *testing.T) {
	var a Int64
	hammer(1000, func(_, _ int) { a.Add(3) })
	if got := a.Load(); got != int64(nGoroutines*1000*3) {
		t.Errorf("sum = %d, want %d", got, nGoroutines*1000*3)
	}
}

func TestInt64SubConcurrent(t *testing.T) {
	var a Int64
	a.Store(nGoroutines * 500)
	hammer(500, func(_, _ int) { a.Sub(1) })
	if got := a.Load(); got != 0 {
		t.Errorf("after subs = %d, want 0", got)
	}
}

func TestInt64MinMaxConcurrent(t *testing.T) {
	var lo, hi Int64
	lo.Store(math.MaxInt64)
	hi.Store(math.MinInt64)
	hammer(1000, func(g, i int) {
		v := int64(g*1000 + i)
		lo.Min(v)
		hi.Max(v)
	})
	if lo.Load() != 0 {
		t.Errorf("min = %d, want 0", lo.Load())
	}
	if want := int64((nGoroutines-1)*1000 + 999); hi.Load() != want {
		t.Errorf("max = %d, want %d", hi.Load(), want)
	}
}

func TestInt64MinMaxReturnOldValue(t *testing.T) {
	var a Int64
	a.Store(10)
	if old := a.Min(5); old != 10 {
		t.Errorf("Min capture = %d, want 10", old)
	}
	if old := a.Min(7); old != 5 {
		t.Errorf("Min no-update capture = %d, want 5", old)
	}
	if a.Load() != 5 {
		t.Errorf("value = %d, want 5", a.Load())
	}
	if old := a.Max(9); old != 5 || a.Load() != 9 {
		t.Errorf("Max capture = %d (val %d), want 5 (val 9)", old, a.Load())
	}
}

func TestInt64Bitwise(t *testing.T) {
	var a Int64
	a.Store(0b1100)
	if old := a.And(0b1010); old != 0b1100 || a.Load() != 0b1000 {
		t.Errorf("And: old=%b val=%b", old, a.Load())
	}
	if old := a.Or(0b0001); old != 0b1000 || a.Load() != 0b1001 {
		t.Errorf("Or: old=%b val=%b", old, a.Load())
	}
	if old := a.Xor(0b1111); old != 0b1001 || a.Load() != 0b0110 {
		t.Errorf("Xor: old=%b val=%b", old, a.Load())
	}
}

func TestInt64XorConcurrentSelfCancels(t *testing.T) {
	// An even number of XORs with the same mask must cancel out.
	var a Int64
	hammer(1000, func(_, _ int) { a.Xor(0x5a5a) }) // 8*1000 = even
	if a.Load() != 0 {
		t.Errorf("xor parity broken: %x", a.Load())
	}
}

func TestUint64Ops(t *testing.T) {
	var a Uint64
	a.Store(100)
	a.Add(28)
	if a.Load() != 128 {
		t.Errorf("add: %d", a.Load())
	}
	a.Max(500)
	a.Min(200)
	if a.Load() != 200 {
		t.Errorf("minmax: %d", a.Load())
	}
}

func TestFloat64AddConcurrent(t *testing.T) {
	var a Float64
	hammer(1000, func(_, _ int) { a.Add(0.5) })
	if got, want := a.Load(), float64(nGoroutines)*1000*0.5; got != want {
		t.Errorf("sum = %g, want %g", got, want)
	}
}

func TestFloat64MulSequential(t *testing.T) {
	var a Float64
	a.Store(1)
	for i := 0; i < 10; i++ {
		a.Mul(2)
	}
	if a.Load() != 1024 {
		t.Errorf("mul = %g, want 1024", a.Load())
	}
}

func TestFloat64MinMaxConcurrent(t *testing.T) {
	var lo, hi Float64
	lo.Store(math.Inf(1))
	hi.Store(math.Inf(-1))
	hammer(1000, func(g, i int) {
		v := float64(g) + float64(i)/1000
		lo.Min(v)
		hi.Max(v)
	})
	if lo.Load() != 0 {
		t.Errorf("min = %g", lo.Load())
	}
	if want := float64(nGoroutines-1) + 0.999; hi.Load() != want {
		t.Errorf("max = %g, want %g", hi.Load(), want)
	}
}

func TestFloat64NegativeZeroAndSpecials(t *testing.T) {
	var a Float64
	a.Store(math.Inf(-1))
	a.Max(-1)
	if a.Load() != -1 {
		t.Errorf("max over -inf = %g", a.Load())
	}
	a.Store(0)
	a.Add(math.Inf(1))
	if !math.IsInf(a.Load(), 1) {
		t.Errorf("inf add = %g", a.Load())
	}
}

func TestFloat32Add(t *testing.T) {
	var a Float32
	hammer(100, func(_, _ int) { a.Add(1) })
	if got := a.Load(); got != nGoroutines*100 {
		t.Errorf("sum = %g", got)
	}
}

func TestBoolOrAnd(t *testing.T) {
	var a Bool
	if old := a.Or(false); old || a.Load() {
		t.Error("Or(false) must not set")
	}
	if old := a.Or(true); old {
		t.Error("first Or(true) should capture false")
	}
	if !a.Load() {
		t.Error("Or(true) must set")
	}
	if old := a.And(true); !old || !a.Load() {
		t.Error("And(true) must keep true")
	}
	if old := a.And(false); !old || a.Load() {
		t.Error("And(false) must clear")
	}
}

// Property: a sequence of atomic float adds equals the serial sum, regardless
// of value signs and magnitudes, when applied single-threaded.
func TestFloat64AddMatchesSerialProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var a Float64
		var want float64
		for _, x := range xs {
			if math.IsNaN(x) {
				continue
			}
			a.Add(x)
			want += x
		}
		got := a.Load()
		return got == want || (math.IsNaN(got) && math.IsNaN(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: concurrent Min/Max agree with the serial extrema of the inputs.
func TestMinMaxMatchSerialExtremaProperty(t *testing.T) {
	f := func(xs []int64) bool {
		if len(xs) == 0 {
			return true
		}
		var lo, hi Int64
		lo.Store(math.MaxInt64)
		hi.Store(math.MinInt64)
		var wg sync.WaitGroup
		for _, x := range xs {
			wg.Add(1)
			go func(x int64) {
				defer wg.Done()
				lo.Min(x)
				hi.Max(x)
			}(x)
		}
		wg.Wait()
		wantLo, wantHi := xs[0], xs[0]
		for _, x := range xs {
			wantLo = min(wantLo, x)
			wantHi = max(wantHi, x)
		}
		return lo.Load() == wantLo && hi.Load() == wantHi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
