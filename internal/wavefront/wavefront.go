// Package wavefront is the dependency-structured workload of the harness: a
// blocked 2D Gauss–Seidel sweep, the canonical depend-clause pattern. Cell
// (i,j) is updated from its already-updated north and west neighbours, so a
// tile can run only after the tile above it and the tile to its left — a
// wavefront of ready tiles advances across the grid diagonal by diagonal.
//
// Plain worksharing loops cannot express this (they would need a barrier
// per anti-diagonal, serialising the ragged start and end of each front);
// task dependencies — or doacross cross-iteration dependences — let every
// tile start the moment its two predecessors finish. The variants follow
// the harness convention: Serial is the baseline, Ref is the hand-built
// goroutine pipeline (barrier per anti-diagonal, the best structure
// available without dependencies), OMP runs one task per tile per sweep
// with depend(in) on the north/west tiles' tokens and depend(inout) on the
// tile's own, and Doacross expresses the same dependences at loop level
// via ordered(2) + depend(sink)/depend(source).
//
// All variants apply updates in the same per-cell order, so their results
// are bit-identical and Checksum equality is exact.
package wavefront

import (
	"sync"

	"repro/internal/core"
	"repro/internal/sched"
)

// Spec fixes a wavefront problem: an N×N grid swept Sweeps times in tiles
// of Block×Block cells.
type Spec struct {
	N      int
	Block  int
	Sweeps int
}

// DefaultSpec returns the harness configuration for an n×n grid.
func DefaultSpec(n int) Spec {
	b := 64
	if b > n {
		b = n
	}
	return Spec{N: n, Block: b, Sweeps: 4}
}

// blocks returns the tile count per dimension (over rows/cols 1..N-1; row 0
// and column 0 are fixed boundary).
func (s Spec) blocks() int {
	return (s.N - 1 + s.Block - 1) / s.Block
}

// NewGrid builds the deterministic initial grid.
func NewGrid(s Spec) []float64 {
	g := make([]float64, s.N*s.N)
	for i := 0; i < s.N; i++ {
		for j := 0; j < s.N; j++ {
			g[i*s.N+j] = float64((i*131+j*37)%97) / 97.0
		}
	}
	return g
}

// Checksum folds the grid into one comparable value. Variants are
// bit-identical, so exact equality is the verification criterion.
func Checksum(g []float64) float64 {
	sum := 0.0
	for _, v := range g {
		sum += v
	}
	return sum
}

// tile applies one sweep's update to tile (bi,bj): a Gauss–Seidel relaxation
// reading the updated north and west neighbours.
func tile(s Spec, g []float64, bi, bj int) {
	n := s.N
	rlo, rhi := 1+bi*s.Block, min(n, 1+(bi+1)*s.Block)
	clo, chi := 1+bj*s.Block, min(n, 1+(bj+1)*s.Block)
	for i := rlo; i < rhi; i++ {
		row := g[i*n:]
		north := g[(i-1)*n:]
		for j := clo; j < chi; j++ {
			row[j] = 0.25 * (2*row[j] + north[j] + row[j-1])
		}
	}
}

// Serial runs the sweeps single-threaded, row-major.
func Serial(s Spec, g []float64) {
	nb := s.blocks()
	for sweep := 0; sweep < s.Sweeps; sweep++ {
		for bi := 0; bi < nb; bi++ {
			for bj := 0; bj < nb; bj++ {
				tile(s, g, bi, bj)
			}
		}
	}
}

// Ref is the hand-parallelised goroutine implementation: tiles of each
// anti-diagonal run concurrently (bounded by threads), with a full join
// between diagonals — the structure a runtime without task dependencies
// forces onto a wavefront.
func Ref(s Spec, g []float64, threads int) {
	if threads < 1 {
		threads = 1
	}
	nb := s.blocks()
	sem := make(chan struct{}, threads)
	for sweep := 0; sweep < s.Sweeps; sweep++ {
		for d := 0; d <= 2*(nb-1); d++ {
			var wg sync.WaitGroup
			for bi := max(0, d-nb+1); bi <= min(d, nb-1); bi++ {
				bj := d - bi
				wg.Add(1)
				sem <- struct{}{}
				go func(bi, bj int) {
					defer wg.Done()
					tile(s, g, bi, bj)
					<-sem
				}(bi, bj)
			}
			wg.Wait()
		}
	}
}

// Doacross runs the wavefront as a doacross loop — `ordered(2)` with
// `depend(sink)` / `depend(source)` — the loop-level alternative to the
// task DAG: the 2-D tile space is one worksharing loop per sweep, and each
// tile waits point-to-point on its north and west neighbours' finished
// flags instead of on task-dependence edges. No tasks, no tokens, no
// per-tile closures; the pipeline lives entirely in the worksharing
// entry's iteration-flag vector. Compared to Ref's barrier per
// anti-diagonal, the flags let the ragged front advance tile by tile.
//
// Tiles update cells in the same order as Serial and respect the same
// dependences, so the result is bit-identical to the serial oracle.
func Doacross(rt *core.Runtime, s Spec, g []float64) {
	nb := int64(s.blocks())
	loops := []sched.Loop{{Begin: 0, End: nb, Step: 1}, {Begin: 0, End: nb, Step: 1}}
	rt.Parallel(func(t *core.Thread) {
		for sweep := 0; sweep < s.Sweeps; sweep++ {
			t.ForDoacross(loops, func(ix []int64, d *core.DoacrossCtx) {
				bi, bj := ix[0], ix[1]
				d.Wait(bi-1, bj) // north tile (vacuous on the first row)
				d.Wait(bi, bj-1) // west tile (vacuous on the first column)
				tile(s, g, int(bi), int(bj))
				d.Post()
			})
		}
	})
}

// OMP runs the wavefront on the gomp runtime: the master spawns one task
// per tile per sweep with depend clauses on per-tile tokens, and the other
// team members execute the released tasks from the region-end barrier (a
// task scheduling point). Consecutive sweeps chain through the tokens too
// — the inout dependence on a tile's own token serialises it across
// sweeps — so the whole multi-sweep DAG is in flight at once: sweep k+1's
// top-left corner starts while sweep k's bottom-right is still draining,
// which a barrier-per-diagonal structure cannot do.
func OMP(rt *core.Runtime, s Spec, g []float64) {
	nb := s.blocks()
	tok := make([]byte, nb*nb)
	rt.Parallel(func(t *core.Thread) {
		if t.Num() != 0 {
			return // non-masters proceed to the barrier and execute tasks
		}
		for sweep := 0; sweep < s.Sweeps; sweep++ {
			for bi := 0; bi < nb; bi++ {
				for bj := 0; bj < nb; bj++ {
					bi, bj := bi, bj
					opts := make([]core.TaskOption, 0, 3)
					if bi > 0 {
						opts = append(opts, core.DependIn(&tok[(bi-1)*nb+bj]))
					}
					if bj > 0 {
						opts = append(opts, core.DependIn(&tok[bi*nb+bj-1]))
					}
					opts = append(opts, core.DependInOut(&tok[bi*nb+bj]))
					t.Task(func(*core.Thread) {
						tile(s, g, bi, bj)
					}, opts...)
				}
			}
		}
	})
}
