package wavefront

import (
	"testing"

	"repro/internal/core"
	"repro/internal/icv"
)

func newRuntime(n int) *core.Runtime {
	s := icv.Default()
	s.NumThreads = []int{n}
	return core.NewRuntime(s)
}

// serialChecksum runs the serial variant on a fresh grid.
func serialChecksum(s Spec) float64 {
	g := NewGrid(s)
	Serial(s, g)
	return Checksum(g)
}

func TestRefMatchesSerialExactly(t *testing.T) {
	s := Spec{N: 257, Block: 32, Sweeps: 3}
	want := serialChecksum(s)
	for _, threads := range []int{1, 2, 4} {
		g := NewGrid(s)
		Ref(s, g, threads)
		if got := Checksum(g); got != want {
			t.Errorf("Ref(threads=%d) checksum %v, want %v", threads, got, want)
		}
	}
}

func TestOMPMatchesSerialExactly(t *testing.T) {
	s := Spec{N: 257, Block: 32, Sweeps: 3}
	want := serialChecksum(s)
	for _, threads := range []int{1, 2, 4, 8} {
		g := NewGrid(s)
		OMP(newRuntime(threads), s, g)
		if got := Checksum(g); got != want {
			t.Errorf("OMP(threads=%d) checksum %v, want %v", threads, got, want)
		}
	}
}

// TestDoacrossMatchesSerialExactly is the acceptance gate of the doacross
// subsystem's scenario layer: the pipelined ordered(2) sweep must be
// bit-identical to the serial oracle — every cell, not just a checksum —
// across team sizes 1..8.
func TestDoacrossMatchesSerialExactly(t *testing.T) {
	s := Spec{N: 257, Block: 32, Sweeps: 3}
	want := NewGrid(s)
	Serial(s, want)
	for threads := 1; threads <= 8; threads++ {
		g := NewGrid(s)
		Doacross(newRuntime(threads), s, g)
		for i := range g {
			if g[i] != want[i] {
				t.Fatalf("Doacross(threads=%d): cell %d = %v, want %v", threads, i, g[i], want[i])
			}
		}
	}
}

func TestDoacrossTinyGridsAndRaggedTiles(t *testing.T) {
	for _, s := range []Spec{
		{N: 2, Block: 64, Sweeps: 2},
		{N: 65, Block: 64, Sweeps: 2},
		{N: 100, Block: 33, Sweeps: 1},
	} {
		want := serialChecksum(s)
		g := NewGrid(s)
		Doacross(newRuntime(4), s, g)
		if got := Checksum(g); got != want {
			t.Errorf("Doacross %+v checksum %v, want %v", s, got, want)
		}
	}
}

func TestTinyGridsAndRaggedTiles(t *testing.T) {
	// Grids smaller than a tile, tile edges not dividing N-1, single tile.
	for _, s := range []Spec{
		{N: 2, Block: 64, Sweeps: 2},
		{N: 65, Block: 64, Sweeps: 2},
		{N: 100, Block: 33, Sweeps: 1},
	} {
		want := serialChecksum(s)
		g := NewGrid(s)
		OMP(newRuntime(4), s, g)
		if got := Checksum(g); got != want {
			t.Errorf("OMP %+v checksum %v, want %v", s, got, want)
		}
	}
}
