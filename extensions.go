package gomp

// Extensions beyond the paper's feature list: the teams/distribute league
// constructs (OpenMP 5 host fallback), threadprivate storage, and the
// OMPT-analog tracing interface. The "Extension scope" section of
// DESIGN.md documents this tier and how it relates to the paper's
// pipeline.

import (
	"repro/internal/core"
	"repro/internal/trace"
)

// TeamsCtx is a league member's context; see core.TeamsCtx.
type TeamsCtx = core.TeamsCtx

// Teams runs body once per team of a league on the default runtime — the
// teams construct. numTeams <= 0 selects the default league size.
func Teams(numTeams int, body func(tc *TeamsCtx)) {
	Default().Teams(numTeams, body)
}

// ThreadPrivate is per-thread persistent storage — the threadprivate
// directive. Construct with NewThreadPrivate.
type ThreadPrivate[T any] = core.ThreadPrivate[T]

// NewThreadPrivate creates threadprivate storage with an optional
// initialiser (nil = zero value).
func NewThreadPrivate[T any](init func() T) *ThreadPrivate[T] {
	return core.NewThreadPrivate[T](init)
}

// TraceEvent identifies a runtime event kind (OMPT-analog tool interface).
type TraceEvent = trace.Event

// TraceRecord is one emitted runtime event.
type TraceRecord = trace.Record

// Trace event kinds.
const (
	TraceRegionFork    = trace.EvRegionFork
	TraceRegionJoin    = trace.EvRegionJoin
	TraceBarrierEnter  = trace.EvBarrierEnter
	TraceBarrierExit   = trace.EvBarrierExit
	TraceLoopChunk     = trace.EvLoopChunk
	TraceTaskCreate    = trace.EvTaskCreate
	TraceTaskRun       = trace.EvTaskRun
	TraceTaskReady     = trace.EvTaskReady
	TraceCriticalEnter = trace.EvCriticalEnter
	TraceCriticalExit  = trace.EvCriticalExit
	TraceTargetBegin   = trace.EvTargetBegin
	TraceTargetEnd     = trace.EvTargetEnd
	TraceMapTo         = trace.EvMapTo
	TraceMapFrom       = trace.EvMapFrom
)

// SetTraceHandler installs a process-wide runtime event handler (nil
// removes it). Handlers run inline on hot paths; keep them fast. A region's
// join is its end barrier, so a few worker-side events (barrier exits) may
// still be in flight when the region call returns; call Quiesce on the
// emitting runtime before removing a handler to observe a complete stream.
func SetTraceHandler(h func(TraceRecord)) {
	if h == nil {
		trace.Clear()
		return
	}
	trace.Set(trace.Handler(h))
}

// Quiesce waits for the default runtime's workers to finish their trailing
// region-exit work (see Runtime.Quiesce).
func Quiesce() { Default().Quiesce() }

// NewTraceRecorder returns a collecting handler; install its Handle method
// with SetTraceHandler and read counts/records/summary from it.
func NewTraceRecorder() *trace.Recorder { return trace.NewRecorder() }
