// Doc-drift guards: README.md is the front door's directive/clause matrix,
// and it must not fall behind the parser. These tests enumerate what the
// front end actually accepts — constructs, clauses, schedule kinds and
// modifiers, OMP_SCHEDULE spellings — and fail if README.md stops
// mentioning any of them (CI runs them as the doc-drift check).
package gomp_test

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/directive"
	"repro/internal/icv"
	"repro/internal/sema"
)

func readme(t *testing.T) string {
	t.Helper()
	buf, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("README.md must exist at the module root: %v", err)
	}
	return string(buf)
}

func design(t *testing.T) string {
	t.Helper()
	buf, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatalf("DESIGN.md must exist at the module root: %v", err)
	}
	return string(buf)
}

func TestREADMEListsEveryClause(t *testing.T) {
	md := readme(t)
	for k := directive.ClauseKind(1); k < 64; k++ {
		spelling := k.String()
		if spelling == "invalid" {
			continue
		}
		if spelling == "name" {
			// The internal clause node for critical(name) / cancel types;
			// README documents it under its constructs.
			continue
		}
		if !strings.Contains(md, spelling) {
			t.Errorf("README.md does not mention parser-known clause %q", spelling)
		}
	}
}

func TestREADMEListsEveryConstruct(t *testing.T) {
	md := readme(t)
	for c := directive.ConstructParallel; c < 64; c++ {
		spelling := directive.Construct(c).String()
		if spelling == "invalid" {
			continue
		}
		if !strings.Contains(md, spelling) {
			t.Errorf("README.md does not mention parser-known construct %q", spelling)
		}
	}
}

func TestREADMEListsEveryScheduleSpelling(t *testing.T) {
	md := readme(t)
	// Directive-level kinds and modifiers (what the schedule clause parses).
	for k := directive.ScheduleKind(0); k < 16; k++ {
		spelling := k.String()
		if spelling == "invalid" {
			continue
		}
		if !strings.Contains(md, spelling) {
			t.Errorf("README.md does not mention schedule kind %q", spelling)
		}
	}
	for _, mod := range []directive.ScheduleModifier{directive.ModifierMonotonic, directive.ModifierNonmonotonic} {
		if !strings.Contains(md, mod.String()) {
			t.Errorf("README.md does not mention schedule modifier %q", mod)
		}
	}
	// ICV-level spellings (what OMP_SCHEDULE parses), including the steal
	// extension names, must round-trip through the parser and be documented.
	for _, spelling := range []string{"steal", "static_steal", "nonmonotonic:dynamic"} {
		if _, err := icv.ParseSchedule(spelling); err != nil {
			t.Errorf("documented OMP_SCHEDULE spelling %q no longer parses: %v", spelling, err)
		}
		if !strings.Contains(md, spelling) {
			t.Errorf("README.md does not mention OMP_SCHEDULE spelling %q", spelling)
		}
	}
	for k := icv.ScheduleKind(0); k < 16; k++ {
		spelling := k.String()
		if strings.HasPrefix(spelling, "ScheduleKind(") {
			continue
		}
		if _, err := icv.ParseSchedule(spelling); err != nil {
			t.Errorf("ScheduleKind %v renders as %q, which ParseSchedule rejects: %v", int(k), spelling, err)
		}
		if !strings.Contains(md, spelling) {
			t.Errorf("README.md does not mention OMP_SCHEDULE kind %q", spelling)
		}
	}
}

func TestREADMELinksTheArtifacts(t *testing.T) {
	md := readme(t)
	for _, want := range []string{
		"DESIGN.md", "BENCH_overheads.json", "examples/quickstart", "cmd/gompcc",
		"gompcc", "OMP_SCHEDULE",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("README.md does not reference %s", want)
		}
	}
}

// TestREADMEReductionOps keeps the documented reduction operator list in
// sync with the parser's table (escaped | is checked unescaped).
func TestREADMEReductionOps(t *testing.T) {
	md := readme(t)
	for _, op := range []string{"+", "-", "*", "max", "min", "&", "^"} {
		d, err := directive.Parse(fmt.Sprintf("for reduction(%s:x)", op))
		if err != nil || len(d.Reductions()) != 1 {
			t.Fatalf("parser rejected reduction op %q: %v", op, err)
		}
		if !strings.Contains(md, op) {
			t.Errorf("README.md does not mention reduction operator %q", op)
		}
	}
}

// TestREADMEModuleMode keeps the "Whole-module usage" section honest: the
// module-mode flags gompcc actually defines, the artifacts the pipeline
// produces, and the never-panic/caching vocabulary must all be documented.
func TestREADMEModuleMode(t *testing.T) {
	md := readme(t)
	if !strings.Contains(md, "Whole-module usage") {
		t.Fatal("README.md lacks the \"Whole-module usage\" section")
	}
	for _, flagName := range []string{"`-j", "`-cache", "`-maxerrors", "`-o"} {
		if !strings.Contains(md, flagName) {
			t.Errorf("README.md module section does not document the %s flag", flagName+"`")
		}
	}
	for _, want := range []string{
		"BENCH_gompcc.json", "cmd/gompccbench", "internal/modpipe/corpusgen",
		"recover()", "cache hits",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("README.md does not reference %s", want)
		}
	}
}

// TestREADMESemaMode keeps the semantic-analysis docs honest: the -sema
// flag and every mode spelling it accepts must be documented, every
// documented spelling must still parse, and the sema diagnostic kind must
// appear by name.
func TestREADMESemaMode(t *testing.T) {
	md := readme(t)
	if !strings.Contains(md, "`-sema") {
		t.Error("README.md module section does not document the -sema flag")
	}
	for _, spelling := range []string{"strict", "warn", "off"} {
		if _, err := sema.ParseMode(spelling); err != nil {
			t.Errorf("documented sema mode %q no longer parses: %v", spelling, err)
		}
		if !strings.Contains(md, spelling) {
			t.Errorf("README.md does not mention sema mode %q", spelling)
		}
	}
	if kind := directive.DiagSema.String(); !strings.Contains(md, kind) {
		t.Errorf("README.md does not mention the %q diagnostic kind", kind)
	}
}

// TestDESIGNSemanticAnalysis pins the DESIGN.md coverage the sema layer
// promises: the dedicated section, the unit-granularity and importer
// caveats, and the byte-identity/zero-false-positive vocabulary.
func TestDESIGNSemanticAnalysis(t *testing.T) {
	dd := design(t)
	for _, want := range []string{
		"## Semantic analysis (`internal/sema`)",
		"go/types", "importer.Default", "SoftErrors",
		"Unit granularity", "Importer fallback", "warn mode",
		"false positives",
	} {
		if !strings.Contains(dd, want) {
			t.Errorf("DESIGN.md does not cover %q", want)
		}
	}
}
