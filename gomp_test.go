package gomp_test

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"

	gomp "repro"
	"repro/internal/icv"
)

// The facade tests exercise the public API exactly as README examples and
// gompcc-generated code use it.

func TestPublicParallelFor(t *testing.T) {
	rt := benchRuntime(4)
	const n = 1000
	hits := make([]atomic.Int32, n)
	rt.ParallelFor(n, func(i int, th *gomp.Thread) {
		hits[i].Add(1)
	}, gomp.NumThreads(3), gomp.Schedule(gomp.Dynamic, 8))
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("iteration %d ran %d times", i, hits[i].Load())
		}
	}
}

func TestPublicReduceFor(t *testing.T) {
	rt := benchRuntime(4)
	var got int64
	rt.Parallel(func(th *gomp.Thread) {
		r := gomp.ReduceFor(th, 100, gomp.OpSum, func(i int, acc int64) int64 {
			return acc + int64(i)
		})
		th.Master(func() { got = r })
	})
	if got != 4950 {
		t.Errorf("sum = %d", got)
	}
}

func TestPublicReduceForLoopDescending(t *testing.T) {
	rt := benchRuntime(3)
	var got int64
	rt.Parallel(func(th *gomp.Thread) {
		r := gomp.ReduceForLoop(th, gomp.Loop{Begin: 9, End: -1, Step: -1}, gomp.OpSum,
			func(i int64, acc int64) int64 { return acc + i })
		th.Master(func() { got = r })
	})
	if got != 45 {
		t.Errorf("sum = %d", got)
	}
}

func TestPublicReduceAndCombine(t *testing.T) {
	rt := benchRuntime(4)
	var bad atomic.Int64
	rt.Parallel(func(th *gomp.Thread) {
		r := gomp.Reduce(th, gomp.OpMax, float64(th.Num()))
		if r != 3 {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Error("bare Reduce wrong")
	}
	if gomp.Combine(gomp.OpProd, 6, 7) != 42 {
		t.Error("Combine wrong")
	}
}

func TestDefaultRuntimeHelpers(t *testing.T) {
	old := gomp.MaxThreads()
	gomp.SetNumThreads(2)
	if gomp.MaxThreads() != 2 {
		t.Errorf("MaxThreads = %d", gomp.MaxThreads())
	}
	gomp.SetNumThreads(old)

	ran := false
	gomp.Critical("facade-test", func() { ran = true })
	if !ran {
		t.Error("Critical did not run")
	}
	if gomp.Wtime() < 0 {
		t.Error("Wtime negative")
	}
	var count atomic.Int64
	gomp.Parallel(func(th *gomp.Thread) { count.Add(1) }, gomp.NumThreads(2))
	if count.Load() != 2 {
		t.Errorf("package-level Parallel ran %d bodies", count.Load())
	}
	gomp.ParallelFor(10, func(i int, th *gomp.Thread) { count.Add(1) }, gomp.NumThreads(2))
	if count.Load() != 12 {
		t.Errorf("package-level ParallelFor ran %d iterations", count.Load()-2)
	}
}

func TestClauseHelpers(t *testing.T) {
	if gomp.Zero(3.14) != 0.0 || gomp.Zero("x") != "" {
		t.Error("Zero wrong")
	}
	if gomp.One(7) != 1 || gomp.One(2.5) != 1.0 {
		t.Error("One wrong")
	}
	if gomp.Smallest(int8(5)) != math.MinInt8 {
		t.Error("Smallest wrong for int8")
	}
	if !math.IsInf(gomp.Smallest(1.0), -1) || !math.IsInf(gomp.Largest(1.0), 1) {
		t.Error("float extrema wrong")
	}
	if gomp.AllOnes(uint8(0)) != 0xFF || gomp.AllOnes(int32(0)) != -1 {
		t.Error("AllOnes wrong")
	}
	var dst float64
	gomp.CopyAssign(&dst, any(2.5))
	if dst != 2.5 {
		t.Error("CopyAssign wrong")
	}
}

func TestAtomicAliases(t *testing.T) {
	var f gomp.AtomicFloat64
	f.Add(1.5)
	f.Add(2.5)
	if f.Load() != 4 {
		t.Error("AtomicFloat64 broken")
	}
	var i gomp.AtomicInt64
	i.Add(3)
	if i.Load() != 3 {
		t.Error("AtomicInt64 broken")
	}
	var bo gomp.AtomicBool
	bo.Store(true)
	if !bo.Load() {
		t.Error("AtomicBool broken")
	}
}

func TestScheduleKindsExported(t *testing.T) {
	kinds := []icv.ScheduleKind{gomp.Static, gomp.Dynamic, gomp.Guided, gomp.Auto, gomp.RuntimeSchedule}
	seen := map[icv.ScheduleKind]bool{}
	for _, k := range kinds {
		if seen[k] {
			t.Fatalf("duplicate schedule kind %v", k)
		}
		seen[k] = true
	}
}

func TestLoopAlias(t *testing.T) {
	l := gomp.Loop{Begin: 0, End: 10, Step: 3}
	if l.TripCount() != 4 {
		t.Errorf("TripCount = %d", l.TripCount())
	}
	if l.Iteration(2) != 6 {
		t.Errorf("Iteration(2) = %d", l.Iteration(2))
	}
}

func TestNewRuntimeIsolated(t *testing.T) {
	a := gomp.NewRuntime(nil)
	b := gomp.NewRuntime(nil)
	a.SetNumThreads(2)
	b.SetNumThreads(5)
	if a.MaxThreads() == b.MaxThreads() {
		t.Error("runtimes share ICVs")
	}
}

func TestParallelForRejectsUnknownOptionTypes(t *testing.T) {
	// opts is ...any so Par and For options can mix; anything else must
	// panic with a message naming the argument and its type, not be
	// silently dropped.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("ParallelFor accepted a string option without panicking")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value is %T, want string", r)
		}
		for _, want := range []string{"option 1", "string", "ParOption", "ForOption"} {
			if !strings.Contains(msg, want) {
				t.Errorf("panic message %q missing %q", msg, want)
			}
		}
	}()
	gomp.ParallelFor(4, func(i int, th *gomp.Thread) {}, gomp.NumThreads(2), "whoops")
}
