// Package gomp is GoMP: OpenMP for Go. It reproduces the system of
// "Implementing OpenMP for Zig to Enable Its Use in HPC Context" (Kacs,
// Brown, Lee — ICPP 2024 workshops): a preprocessing compiler front end that
// intercepts OpenMP directives written as comments and lowers them onto a
// fork-join runtime with OpenMP semantics — parallel regions, worksharing
// loops with the full schedule clause (including the work-stealing
// schedule(nonmonotonic:dynamic) and collapse(n) loop flattening),
// data-sharing clauses, reductions, synchronisation constructs and
// explicit tasks.
//
// There are two ways to use it. Directly, through this package's API — a
// parallel region is a closure receiving its *Thread context:
//
//	sum := 0.0
//	gomp.Parallel(func(t *gomp.Thread) {
//		s := gomp.ReduceFor(t, n, gomp.OpSum, func(i int, acc float64) float64 {
//			return acc + work(i)
//		}, gomp.Schedule(gomp.Dynamic, 64))
//		t.Master(func() { sum = s })
//	})
//
// Or through the preprocessor (cmd/gompcc), writing OpenMP directives as
// comments — exactly the paper's approach, since Go, like Zig, has no
// native pragmas:
//
//	//omp parallel for reduction(+:sum) schedule(dynamic,64)
//	for i := 0; i < n; i++ {
//		sum += work(i)
//	}
//
// gompcc rewrites such files into the first form.
//
// The package-level functions operate on the Default runtime, which is
// configured from OMP_NUM_THREADS, OMP_SCHEDULE and the other OMP_*
// environment variables on first use.
package gomp

import (
	"repro/internal/core"
	"repro/internal/icv"
	"repro/internal/reduction"
	"repro/internal/sched"
)

// Thread is a team member's execution context; see core.Thread.
type Thread = core.Thread

// Runtime is an OpenMP device (worker pool + ICVs); see core.Runtime.
type Runtime = core.Runtime

// OrderedCtx is the handle for ordered regions inside ForOrdered loops.
type OrderedCtx = core.OrderedCtx

// DoacrossCtx is the per-iteration handle inside ForDoacross loops —
// `ordered(n)` with `depend(sink: vec)` (Wait) and `depend(source)` (Post).
type DoacrossCtx = core.DoacrossCtx

// Loop is a canonical iteration space {Begin, End, Step} (half-open, Step
// may be negative).
type Loop = sched.Loop

// ParOption configures parallel regions; ForOption configures worksharing
// loops, single and sections; TaskOption configures tasks and taskloops
// (depend, priority, final, if, num_tasks, nogroup).
type (
	ParOption  = core.ParOption
	ForOption  = core.ForOption
	TaskOption = core.TaskOption
)

// Op is a reduction operator.
type Op = reduction.Op

// Reduction operators for ReduceFor and Reduce.
const (
	OpSum  = reduction.Sum
	OpProd = reduction.Prod
	OpMax  = reduction.Max
	OpMin  = reduction.Min
	OpAnd  = reduction.BitAnd
	OpOr   = reduction.BitOr
	OpXor  = reduction.BitXor
)

// Schedule kinds for the Schedule option (the schedule clause).
const (
	// Static divides iterations into blocks (or round-robins chunks).
	Static = icv.StaticSched
	// Dynamic hands out chunks first-come first-served.
	Dynamic = icv.DynamicSched
	// Guided hands out exponentially shrinking chunks.
	Guided = icv.GuidedSched
	// Auto lets the runtime choose.
	Auto = icv.AutoSched
	// RuntimeSchedule defers to OMP_SCHEDULE / SetSchedule.
	RuntimeSchedule = icv.RuntimeSched
	// Steal is the work-stealing scheduler (schedule(nonmonotonic:dynamic),
	// libomp's static_steal): per-thread iteration ranges popped locally,
	// with idle threads stealing half a victim's remaining tail. Best for
	// imbalanced bodies at fine grain, where Dynamic's shared cursor becomes
	// the bottleneck.
	Steal = icv.StealSched
)

// Number constrains reduction element types.
type Number = reduction.Number

// NumThreads is the num_threads clause.
func NumThreads(n int) ParOption { return core.NumThreads(n) }

// If is the if clause; false serialises the region.
func If(cond bool) ParOption { return core.If(cond) }

// Schedule is the schedule clause; chunk 0 means unspecified.
func Schedule(kind icv.ScheduleKind, chunk int) ForOption { return core.Schedule(kind, chunk) }

// NoWait is the nowait clause.
func NoWait() ForOption { return core.NoWait() }

// DependIn is depend(in: addrs...) on a task: wait for the last sibling
// writer of each named storage. Addresses are pointer-like values (&x,
// slices, ...); dependences match by address identity.
func DependIn(addrs ...any) TaskOption { return core.DependIn(addrs...) }

// DependOut is depend(out: addrs...): wait for the last writer and every
// reader since, then become the last writer.
func DependOut(addrs ...any) TaskOption { return core.DependOut(addrs...) }

// DependInOut is depend(inout: addrs...): read-modify-write ordering.
func DependInOut(addrs ...any) TaskOption { return core.DependInOut(addrs...) }

// Priority is the priority clause on task/taskloop: higher runs earlier at
// task scheduling points (a hint, per the spec).
func Priority(n int) TaskOption { return core.Priority(n) }

// Final is the final clause: a final task runs undeferred and so do all its
// descendants — the standard recursion cutoff.
func Final(cond bool) TaskOption { return core.Final(cond) }

// TaskIf is the if clause on task-generating constructs: false makes the
// task undeferred (the encountering thread suspends until it completes).
func TaskIf(cond bool) TaskOption { return core.TaskIf(cond) }

// NumTasks is the num_tasks clause on taskloop.
func NumTasks(n int) TaskOption { return core.NumTasks(n) }

// NoGroup is the nogroup clause on taskloop.
func NoGroup() TaskOption { return core.NoGroup() }

// Default returns the process-wide runtime (lazily initialised from OMP_*
// environment variables).
func Default() *Runtime { return core.Default() }

// NewRuntime creates an isolated runtime; nil ICVs mean spec defaults.
func NewRuntime(icvs *icv.Set) *Runtime { return core.NewRuntime(icvs) }

// Parallel runs body on a team of the default runtime (`omp parallel`).
func Parallel(body func(t *Thread), opts ...ParOption) { Default().Parallel(body, opts...) }

// ParallelFor is the combined `omp parallel for` on the default runtime.
// opts may mix ParOption and ForOption values; any other type panics with a
// message naming the offending argument.
func ParallelFor(n int, body func(i int, t *Thread), opts ...any) {
	Default().ParallelFor(n, body, opts...)
}

// Critical executes fn under the named critical lock of the default runtime.
func Critical(name string, fn func()) { Default().Critical(name, fn) }

// SetNumThreads sets the default team size (omp_set_num_threads).
func SetNumThreads(n int) { Default().SetNumThreads(n) }

// MaxThreads returns the prospective team size (omp_get_max_threads).
func MaxThreads() int { return Default().MaxThreads() }

// SetDynamicThreads sets dyn-var (omp_set_dynamic; named for the package's
// Dynamic schedule-kind constant): with it set, the thread-budget arbiter
// shrinks oversubscribed team requests immediately instead of waiting.
func SetDynamicThreads(on bool) { Default().SetDynamic(on) }

// DynamicThreads returns dyn-var (omp_get_dynamic).
func DynamicThreads() bool { return Default().Dynamic() }

// SetThreadLimit sets thread-limit-var, the process-wide ceiling concurrent
// regions' threads are charged against (OMP_THREAD_LIMIT).
func SetThreadLimit(n int) { Default().SetThreadLimit(n) }

// ThreadLimit returns thread-limit-var (omp_get_thread_limit).
func ThreadLimit() int { return Default().ThreadLimit() }

// Wtime returns elapsed wall-clock seconds (omp_get_wtime).
func Wtime() float64 { return Default().Wtime() }

// ReduceFor is a worksharing loop with a reduction; see core.ReduceFor.
func ReduceFor[T Number](t *Thread, n int, op Op, body func(i int, acc T) T, opts ...ForOption) T {
	return core.ReduceFor(t, n, op, body, opts...)
}

// ReduceForLoop is ReduceFor over a general canonical loop.
func ReduceForLoop[T Number](t *Thread, loop Loop, op Op, body func(i int64, acc T) T, opts ...ForOption) T {
	return core.ReduceForLoop(t, loop, op, body, opts...)
}

// Reduce combines one value per team member; see core.Reduce.
func Reduce[T Number](t *Thread, op Op, v T) T { return core.Reduce(t, op, v) }

// Combine applies a reduction operator to two values.
func Combine[T Number](op Op, a, b T) T { return core.Combine(op, a, b) }
