// Command perfgate is the CI perf-regression gate for the construct
// overheads: it compares a freshly measured syncbench report against the
// checked-in BENCH_overheads.json baseline and fails (exit 1) when any
// gated construct regressed beyond the tolerance band.
//
// The gated rows are the allocation-free fast paths — fork, for, barrier,
// task, task-depend, taskloop — the constructs whose cost the runtime
// promises to hold, plus the cheapest representative of each whole-loop
// family: doacross-chain (cross-iteration wait/post) and target-host (a
// host-fallback target region), whose order of magnitude is likewise a
// promise even though their absolute cost is workload-shaped. The other
// schedule/doacross/target rows stay informational. The tolerance is deliberately
// generous (default: fail only above baseline*mult + slack) because shared
// CI runners are noisy; the gate exists to catch order-of-magnitude
// regressions — a lock back on the spawn path, a lost free list — not 10%
// jitter.
//
// With -serving-fresh, the gate also holds the servebench serving rows
// (serve-p50, serve-p99 against BENCH_serving.json) under their own, even
// wider band: tail latency under 64-way contention is noisier than a
// single-goroutine construct price, so the serving band defaults to
// baseline*5 + 1ms and exists purely to catch the serving path collapsing
// (a convoy on the shard table, an arbiter that stops granting).
//
// With -gompcc-fresh, it holds the gompccbench whole-module rows
// (BENCH_gompcc.json). These are throughput rows — files/sec and
// warm-over-cold speedup, where bigger is better — so the band inverts:
// a row fails when fresh < baseline/mult. This catches the module
// pipeline losing its parallelism or the incremental cache going cold
// (every warm run re-transforming), not single-digit jitter.
//
//	go run ./cmd/syncbench -threads=1 -iters=50000 -out /tmp/fresh.json
//	go run ./cmd/perfgate -baseline BENCH_overheads.json -fresh /tmp/fresh.json
//	go run ./cmd/servebench -benchtime 50x -out /tmp/serving.json
//	go run ./cmd/perfgate -serving-baseline BENCH_serving.json -serving-fresh /tmp/serving.json
//	go run ./cmd/gompccbench -files 2000 -out /tmp/gompcc.json
//	go run ./cmd/perfgate -gompcc-baseline BENCH_gompcc.json -gompcc-fresh /tmp/gompcc.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type result struct {
	Construct string  `json:"construct"`
	NsPerOp   float64 `json:"ns_per_op"`
}

type report struct {
	Results []result `json:"results"`
}

// gated lists the constructs the gate holds: the zero-alloc fast paths
// plus one representative per whole-loop family (doacross, target).
var gated = []string{"fork", "for", "barrier", "task", "task-depend", "taskloop", "doacross-chain", "target-host"}

// servingGated lists the servebench rows the serving gate holds. The
// mean/baseline-layout rows are informational only.
var servingGated = []string{"serve-p50", "serve-p99"}

// gompccGated lists the gompccbench throughput rows (bigger is better;
// gated with the inverted band), with and without the semantic-analysis
// phase: the sema rows hold the type-checked pipeline's throughput and
// its unit cache.
var gompccGated = []string{
	"gompcc-files-per-sec", "gompcc-warm-speedup",
	"gompcc-sema-files-per-sec", "gompcc-sema-warm-speedup",
}

func main() {
	basePath := flag.String("baseline", "BENCH_overheads.json", "checked-in syncbench baseline")
	freshPath := flag.String("fresh", "", "freshly measured syncbench report")
	mult := flag.Float64("mult", 2.5, "fail when fresh > baseline*mult + slack")
	slack := flag.Float64("slack", 100, "absolute slack in ns/op added to the band")
	servingBasePath := flag.String("serving-baseline", "BENCH_serving.json", "checked-in servebench baseline")
	servingFreshPath := flag.String("serving-fresh", "", "freshly measured servebench report")
	servingMult := flag.Float64("serving-mult", 5, "serving-row band multiplier")
	servingSlack := flag.Float64("serving-slack", 1e6, "serving-row absolute slack in ns")
	gompccBasePath := flag.String("gompcc-baseline", "BENCH_gompcc.json", "checked-in gompccbench baseline")
	gompccFreshPath := flag.String("gompcc-fresh", "", "freshly measured gompccbench report")
	gompccMult := flag.Float64("gompcc-mult", 3, "gompcc throughput-row band divisor (fail when fresh < baseline/mult)")
	flag.Parse()
	if *freshPath == "" && *servingFreshPath == "" && *gompccFreshPath == "" {
		fmt.Fprintln(os.Stderr, "perfgate: -fresh, -serving-fresh and/or -gompcc-fresh is required")
		os.Exit(2)
	}

	failed := false
	if *freshPath != "" {
		failed = gate(gated, load(*basePath), load(*freshPath), *mult, *slack) || failed
	}
	if *servingFreshPath != "" {
		failed = gate(servingGated, load(*servingBasePath), load(*servingFreshPath), *servingMult, *servingSlack) || failed
	}
	if *gompccFreshPath != "" {
		failed = gateRate(gompccGated, loadValues(*gompccBasePath), loadValues(*gompccFreshPath), *gompccMult) || failed
	}
	if failed {
		fmt.Fprintln(os.Stderr, "perfgate: overhead regression detected")
		os.Exit(1)
	}
}

// gate compares the named rows of fresh against base under the band
// base*mult + slack and reports whether any row failed.
func gate(names []string, base, fresh map[string]float64, mult, slack float64) bool {
	failed := false
	for _, name := range names {
		b, bok := base[name]
		f, fok := fresh[name]
		if !bok || !fok {
			// A missing row is a gate failure, not a skip: renaming a
			// construct must not silently disarm its gate.
			fmt.Fprintf(os.Stderr, "perfgate: FAIL %-12s missing (baseline: %v, fresh: %v)\n", name, bok, fok)
			failed = true
			continue
		}
		limit := b*mult + slack
		status := "ok  "
		if f > limit {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("perfgate: %s %-12s baseline %10.1f ns/op  fresh %10.1f ns/op  limit %10.1f\n",
			status, name, b, f, limit)
	}
	return failed
}

// gateRate compares throughput rows (bigger is better): a row fails when
// fresh drops below baseline/mult. Missing rows fail like gate's.
func gateRate(names []string, base, fresh map[string]float64, mult float64) bool {
	failed := false
	for _, name := range names {
		b, bok := base[name]
		f, fok := fresh[name]
		if !bok || !fok {
			fmt.Fprintf(os.Stderr, "perfgate: FAIL %-20s missing (baseline: %v, fresh: %v)\n", name, bok, fok)
			failed = true
			continue
		}
		floor := b / mult
		status := "ok  "
		if f < floor {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("perfgate: %s %-20s baseline %10.1f  fresh %10.1f  floor %10.1f\n",
			status, name, b, f, floor)
	}
	return failed
}

// valueRow is the gompccbench report row shape ({construct, value} with
// bigger-is-better semantics, unlike the ns_per_op rows).
type valueRow struct {
	Construct string  `json:"construct"`
	Value     float64 `json:"value"`
}

func loadValues(path string) map[string]float64 {
	buf, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(2)
	}
	var rep struct {
		Results []valueRow `json:"results"`
	}
	if err := json.Unmarshal(buf, &rep); err != nil {
		fmt.Fprintf(os.Stderr, "perfgate: %s: %v\n", path, err)
		os.Exit(2)
	}
	out := make(map[string]float64, len(rep.Results))
	for _, r := range rep.Results {
		out[r.Construct] = r.Value
	}
	return out
}

func load(path string) map[string]float64 {
	buf, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(2)
	}
	var rep report
	if err := json.Unmarshal(buf, &rep); err != nil {
		fmt.Fprintf(os.Stderr, "perfgate: %s: %v\n", path, err)
		os.Exit(2)
	}
	out := make(map[string]float64, len(rep.Results))
	for _, r := range rep.Results {
		out[r.Construct] = r.NsPerOp
	}
	return out
}
