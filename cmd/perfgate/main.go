// Command perfgate is the CI perf-regression gate for the construct
// overheads: it compares a freshly measured syncbench report against the
// checked-in BENCH_overheads.json baseline and fails (exit 1) when any
// gated construct regressed beyond the tolerance band.
//
// The gated rows are the allocation-free fast paths — fork, for, barrier,
// task, task-depend, taskloop — the constructs whose cost the runtime
// promises to hold; the schedule/doacross/target rows price whole loops and
// are too workload-shaped for a threshold gate. The tolerance is deliberately
// generous (default: fail only above baseline*mult + slack) because shared
// CI runners are noisy; the gate exists to catch order-of-magnitude
// regressions — a lock back on the spawn path, a lost free list — not 10%
// jitter.
//
// With -serving-fresh, the gate also holds the servebench serving rows
// (serve-p50, serve-p99 against BENCH_serving.json) under their own, even
// wider band: tail latency under 64-way contention is noisier than a
// single-goroutine construct price, so the serving band defaults to
// baseline*5 + 1ms and exists purely to catch the serving path collapsing
// (a convoy on the shard table, an arbiter that stops granting).
//
//	go run ./cmd/syncbench -threads=1 -iters=50000 -out /tmp/fresh.json
//	go run ./cmd/perfgate -baseline BENCH_overheads.json -fresh /tmp/fresh.json
//	go run ./cmd/servebench -benchtime 50x -out /tmp/serving.json
//	go run ./cmd/perfgate -serving-baseline BENCH_serving.json -serving-fresh /tmp/serving.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type result struct {
	Construct string  `json:"construct"`
	NsPerOp   float64 `json:"ns_per_op"`
}

type report struct {
	Results []result `json:"results"`
}

// gated lists the constructs the gate holds: the zero-alloc fast paths.
var gated = []string{"fork", "for", "barrier", "task", "task-depend", "taskloop"}

// servingGated lists the servebench rows the serving gate holds. The
// mean/baseline-layout rows are informational only.
var servingGated = []string{"serve-p50", "serve-p99"}

func main() {
	basePath := flag.String("baseline", "BENCH_overheads.json", "checked-in syncbench baseline")
	freshPath := flag.String("fresh", "", "freshly measured syncbench report")
	mult := flag.Float64("mult", 2.5, "fail when fresh > baseline*mult + slack")
	slack := flag.Float64("slack", 100, "absolute slack in ns/op added to the band")
	servingBasePath := flag.String("serving-baseline", "BENCH_serving.json", "checked-in servebench baseline")
	servingFreshPath := flag.String("serving-fresh", "", "freshly measured servebench report")
	servingMult := flag.Float64("serving-mult", 5, "serving-row band multiplier")
	servingSlack := flag.Float64("serving-slack", 1e6, "serving-row absolute slack in ns")
	flag.Parse()
	if *freshPath == "" && *servingFreshPath == "" {
		fmt.Fprintln(os.Stderr, "perfgate: -fresh and/or -serving-fresh is required")
		os.Exit(2)
	}

	failed := false
	if *freshPath != "" {
		failed = gate(gated, load(*basePath), load(*freshPath), *mult, *slack) || failed
	}
	if *servingFreshPath != "" {
		failed = gate(servingGated, load(*servingBasePath), load(*servingFreshPath), *servingMult, *servingSlack) || failed
	}
	if failed {
		fmt.Fprintln(os.Stderr, "perfgate: overhead regression detected")
		os.Exit(1)
	}
}

// gate compares the named rows of fresh against base under the band
// base*mult + slack and reports whether any row failed.
func gate(names []string, base, fresh map[string]float64, mult, slack float64) bool {
	failed := false
	for _, name := range names {
		b, bok := base[name]
		f, fok := fresh[name]
		if !bok || !fok {
			// A missing row is a gate failure, not a skip: renaming a
			// construct must not silently disarm its gate.
			fmt.Fprintf(os.Stderr, "perfgate: FAIL %-12s missing (baseline: %v, fresh: %v)\n", name, bok, fok)
			failed = true
			continue
		}
		limit := b*mult + slack
		status := "ok  "
		if f > limit {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("perfgate: %s %-12s baseline %10.1f ns/op  fresh %10.1f ns/op  limit %10.1f\n",
			status, name, b, f, limit)
	}
	return failed
}

func load(path string) map[string]float64 {
	buf, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(2)
	}
	var rep report
	if err := json.Unmarshal(buf, &rep); err != nil {
		fmt.Fprintf(os.Stderr, "perfgate: %s: %v\n", path, err)
		os.Exit(2)
	}
	out := make(map[string]float64, len(rep.Results))
	for _, r := range rep.Results {
		out[r.Construct] = r.NsPerOp
	}
	return out
}
