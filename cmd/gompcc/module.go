package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/directive"
	"repro/internal/modpipe"
	"repro/internal/sema"
	"repro/internal/transform"
)

// moduleConfig carries the module-mode flags.
type moduleConfig struct {
	Root      string
	OutDir    string // -o: mirror transformed files here ("" = diagnose only)
	CacheDir  string // -cache: incremental rebuild cache directory
	Workers   int    // -j: transform team size (0 = runtime default)
	MaxErrors int    // -maxerrors: diagnostic print cap (0 = no limit)
	Sema      sema.Mode
	Transform transform.Options
	Quiet     bool // suppress the stats line (tests)
}

// runModule executes whole-module mode: the modpipe pipeline over every Go
// file under cfg.Root, diagnostics printed compiler-style grouped per file,
// then a stats line. It returns the number of error diagnostics (the
// process exits non-zero when there were any) or -1 on an infrastructure
// failure.
func runModule(w io.Writer, cfg moduleConfig) int {
	start := time.Now()
	var res *modpipe.Result
	res, err := modpipe.Run(cfg.Root, modpipe.Options{
		Workers:   cfg.Workers,
		CacheDir:  cfg.CacheDir,
		OutDir:    cfg.OutDir,
		Sema:      cfg.Sema,
		Transform: cfg.Transform,
	})
	if err != nil {
		fmt.Fprintln(w, "gompcc:", err)
		return -1
	}
	elapsed := time.Since(start)

	printModuleDiagnostics(w, cfg.Root, res.Diags, cfg.MaxErrors)
	errs := res.ErrorCount()
	if !cfg.Quiet {
		rate := float64(len(res.Files)) / elapsed.Seconds()
		semaNote := ""
		if cfg.Sema != sema.Off {
			semaNote = fmt.Sprintf(", sema %s: %d unit%s (%d checked, %d cache hits)",
				cfg.Sema, res.SemaUnits, plural(res.SemaUnits), res.SemaChecked, res.SemaCacheHits)
		}
		fmt.Fprintf(w, "gompcc: %d files (%d transformed, %d cache hits)%s, %d error%s, %d recovered panic%s, %.2fs (%.0f files/s)\n",
			len(res.Files), res.Transformed, res.CacheHits, semaNote,
			errs, plural(errs), res.Panics, plural(res.Panics),
			elapsed.Seconds(), rate)
	}
	return errs
}

func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}

// printModuleDiagnostics renders an aggregated multi-file DiagnosticList
// the same way single-file mode does — position, quoted source line, caret
// — loading each file's source lazily and capping output at maxErrors
// diagnostics total.
func printModuleDiagnostics(w io.Writer, root string, diags directive.DiagnosticList, maxErrors int) {
	lineCache := map[string][]string{}
	sourceLines := func(rel string) []string {
		if lines, ok := lineCache[rel]; ok {
			return lines
		}
		var lines []string
		if buf, err := os.ReadFile(filepath.Join(root, filepath.FromSlash(rel))); err == nil {
			lines = strings.Split(string(buf), "\n")
		}
		lineCache[rel] = lines
		return lines
	}
	for i, d := range diags {
		if maxErrors > 0 && i >= maxErrors {
			fmt.Fprintf(w, "gompcc: too many errors; %d not shown (raise -maxerrors)\n", len(diags)-i)
			return
		}
		fmt.Fprintln(w, d.Error())
		if lines := sourceLines(d.File); d.Line >= 1 && d.Line <= len(lines) {
			line := lines[d.Line-1]
			fmt.Fprintln(w, line)
			fmt.Fprintln(w, caretLine(line, d.Col, d.Span))
		}
	}
}
