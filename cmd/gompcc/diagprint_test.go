package main

import (
	"strings"
	"testing"

	"repro/internal/directive"
	"repro/internal/sema"
	"repro/internal/transform"
)

// srcThreeErrors carries three distinct directive errors (unknown
// construct, unknown schedule kind, worksharing outside parallel) — the
// acceptance scenario: all three must be reported, positioned, in one
// invocation.
const srcThreeErrors = `package p

func f(n int) {
	//omp frobnicate
	{
	}
	//omp parallel for schedule(chaotic)
	for i := 0; i < n; i++ {
		_ = i
	}
	//omp for
	for i := 0; i < n; i++ {
		_ = i
	}
}
`

func transformDiags(t *testing.T, src string) directive.DiagnosticList {
	t.Helper()
	_, err := transform.File("in.go", []byte(src), transform.DefaultOptions())
	if err == nil {
		t.Fatal("expected diagnostics")
	}
	diags, ok := err.(directive.DiagnosticList)
	if !ok {
		t.Fatalf("error is %T, want DiagnosticList: %v", err, err)
	}
	return diags
}

// TestSemaDiagnosticCaret is the acceptance scenario for the sema stage:
// reduction(+:) on a string is rejected at transform time with a caret
// diagnostic whose position and span point at the user's directive line.
func TestSemaDiagnosticCaret(t *testing.T) {
	src := `package p

func f(words []string) string {
	s := ""
	//omp parallel for reduction(+: s)
	for i := 0; i < len(words); i++ {
		s += words[i]
	}
	return s
}
`
	opts := transform.DefaultOptions()
	opts.Sema = sema.Strict
	_, err := transform.File("in.go", []byte(src), opts)
	if err == nil {
		t.Fatal("strict sema accepted a string reduction")
	}
	diags, ok := err.(directive.DiagnosticList)
	if !ok {
		t.Fatalf("error is %T, want DiagnosticList", err)
	}
	var out strings.Builder
	if n := printDiagnostics(&out, []byte(src), diags, 0); n == 0 {
		t.Fatal("no error-severity diagnostics printed")
	}
	text := out.String()
	if !strings.Contains(text, "in.go:5:") {
		t.Errorf("diagnostic not positioned at the directive line:\n%s", text)
	}
	if !strings.Contains(text, "//omp parallel for reduction(+: s)") {
		t.Errorf("source line with the directive not quoted:\n%s", text)
	}
	if !strings.Contains(text, "^") {
		t.Errorf("no caret line printed:\n%s", text)
	}
}

func TestPrintDiagnosticsReportsAllWithCarets(t *testing.T) {
	diags := transformDiags(t, srcThreeErrors)
	var b strings.Builder
	n := printDiagnostics(&b, []byte(srcThreeErrors), diags, 20)
	if n != 3 {
		t.Fatalf("error count = %d, want 3\n%s", n, b.String())
	}
	out := b.String()
	for _, want := range []string{
		"in.go:4:8: error:",  // //omp frobnicate — col of "frobnicate"
		"in.go:7:21: error:", // schedule(chaotic) — col of "schedule"
		"in.go:11:8: error:", // orphaned omp for — col of body
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Each reported line is followed by the quoted source and a caret.
	if got := strings.Count(out, "\n\t"); got < 3 {
		t.Errorf("expected >= 3 quoted source lines, got %d:\n%s", got, out)
	}
	if got := strings.Count(out, "^"); got != 3 {
		t.Errorf("expected 3 carets, got %d:\n%s", got, out)
	}
	// The caret under "frobnicate" is tab-aligned and spans the token.
	if !strings.Contains(out, "\t      ^~~~~~~~~~\n") {
		t.Errorf("caret not aligned under frobnicate:\n%s", out)
	}
}

func TestPrintDiagnosticsMaxErrors(t *testing.T) {
	diags := transformDiags(t, srcThreeErrors)
	var b strings.Builder
	n := printDiagnostics(&b, []byte(srcThreeErrors), diags, 1)
	if n != 3 {
		t.Fatalf("error count must include suppressed diagnostics, got %d", n)
	}
	out := b.String()
	if got := strings.Count(out, "^"); got != 1 {
		t.Errorf("maxerrors=1 must print one diagnostic, got %d carets:\n%s", got, out)
	}
	if !strings.Contains(out, "2 not shown") {
		t.Errorf("suppression note missing:\n%s", out)
	}
}

func TestCaretLine(t *testing.T) {
	cases := []struct {
		line string
		col  int
		span int
		want string
	}{
		{"//omp for", 7, 3, "      ^~~"},
		{"\t//omp for", 8, 3, "\t      ^~~"}, // tab preserved
		{"//omp for", 9, 99, "        ^"},    // span clamped to line end
		{"//omp for", 10, 1, "         ^"},   // one past end
	}
	for _, c := range cases {
		if got := caretLine(c.line, c.col, c.span); got != c.want {
			t.Errorf("caretLine(%q, %d, %d) = %q, want %q", c.line, c.col, c.span, got, c.want)
		}
	}
}
