package main

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/directive"
)

// printDiagnostics renders a DiagnosticList the way a compiler does: one
//
//	file:line:col: error: message
//	        //omp parallel for schedule(chaotic)
//	                           ^~~~~~~~
//
// block per diagnostic, with the source line quoted and a caret underlining
// the offending token. At most maxErrors diagnostics are printed (0 means
// no limit); the count of suppressed ones is noted. It returns the total
// number of error-severity diagnostics (printed or not), for the exit
// summary.
func printDiagnostics(w io.Writer, src []byte, diags directive.DiagnosticList, maxErrors int) int {
	lines := strings.Split(string(src), "\n")
	printed := 0
	for _, d := range diags {
		if maxErrors > 0 && printed >= maxErrors {
			fmt.Fprintf(w, "gompcc: too many errors; %d not shown (raise -maxerrors)\n", len(diags)-printed)
			break
		}
		fmt.Fprintln(w, d.Error())
		if d.Line >= 1 && d.Line <= len(lines) {
			line := lines[d.Line-1]
			fmt.Fprintln(w, line)
			fmt.Fprintln(w, caretLine(line, d.Col, d.Span))
		}
		printed++
	}
	return diags.ErrorCount()
}

// caretLine builds the underline row for a 1-based column and span. Tabs in
// the prefix are preserved so the caret stays aligned under tab-indented
// source; everything else becomes a space.
func caretLine(line string, col, span int) string {
	var b strings.Builder
	for i := 0; i < col-1 && i < len(line); i++ {
		if line[i] == '\t' {
			b.WriteByte('\t')
		} else {
			b.WriteByte(' ')
		}
	}
	b.WriteByte('^')
	// Clamp the underline to the visible line so a span that runs past
	// the end (or a column past it) cannot produce a stray tail.
	tail := min(span-1, len(line)-col)
	for i := 0; i < tail; i++ {
		b.WriteByte('~')
	}
	return b.String()
}
