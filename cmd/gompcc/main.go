// Command gompcc is the OpenMP preprocessor for Go — the analog of the
// paper's modified Zig compiler front end. It rewrites Go source files
// containing OpenMP directive comments (//omp parallel for ...) into plain
// Go that calls the gomp runtime.
//
// Usage:
//
//	gompcc [-o output.go] [-pkg name -import path] [-sema mode] [-maxerrors n] [-dump-stages] input.go
//	gompcc [-o outdir] [-j n] [-cache dir] [-sema mode] [-maxerrors n] module-dir
//
// Given a file (or -), gompcc transforms that one file. Given a directory,
// it runs in whole-module mode: every Go file under the directory is
// transformed in parallel on the gomp runtime itself (-j sets the worker
// team size), diagnostics from all files are aggregated and sorted by
// file:line:col, and -cache enables the incremental rebuild cache so a
// warm re-run over an unchanged module does near-zero work. Each per-file
// transform runs under a recover boundary: a transformer panic becomes a
// positioned diagnostic for that file, never a crash.
//
// Diagnostics are aggregated and compiler-style: every bad directive in the
// file is reported in one pass as
//
//	file:line:col: error: message
//
// with the source line quoted and a caret under the offending token, then a
// summary count; the exit code is 1 when any error was reported. With
// -dump-stages it prints the Figure 1 pipeline (intercepted pragmas →
// parsed directives → semantic analysis → outlined regions → emitted code)
// to stderr.
//
// -sema selects the semantic-analysis stage, which type-checks each
// transform unit with go/types and validates directive clauses against the
// resolved types (reduction operands must fit the operator, map/depend
// lists must name in-scope mappable variables, and so on): strict (the
// default) turns findings into errors, warn prints them as warnings
// without blocking output, off skips the stage.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/directive"
	"repro/internal/sema"
	"repro/internal/transform"
)

func main() {
	out := flag.String("o", "", "output file; in module mode, output directory (default: stdout / diagnose only)")
	pkg := flag.String("pkg", "gomp", "package name for the runtime facade in generated code")
	imp := flag.String("import", "repro", "import path of the runtime facade")
	maxErrors := flag.Int("maxerrors", 20, "maximum diagnostics to print (0 = no limit)")
	dump := flag.Bool("dump-stages", false, "print the preprocessing pipeline stages to stderr")
	workers := flag.Int("j", 0, "module mode: transform worker count (0 = runtime default)")
	cacheDir := flag.String("cache", "", "module mode: incremental rebuild cache directory")
	semaFlag := flag.String("sema", "strict", "semantic analysis mode: strict, warn or off")
	flag.Parse()

	semaMode, merr := sema.ParseMode(*semaFlag)
	if merr != nil {
		fmt.Fprintln(os.Stderr, "gompcc:", merr)
		os.Exit(2)
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gompcc [-o out.go] [-sema mode] [-maxerrors n] [-dump-stages] input.go\n       gompcc [-o outdir] [-j n] [-cache dir] [-sema mode] [-maxerrors n] module-dir")
		os.Exit(2)
	}
	name := flag.Arg(0)
	if info, serr := os.Stat(name); serr == nil && info.IsDir() {
		errs := runModule(os.Stderr, moduleConfig{
			Root:      name,
			OutDir:    *out,
			CacheDir:  *cacheDir,
			Workers:   *workers,
			MaxErrors: *maxErrors,
			Sema:      semaMode,
			Transform: transform.Options{Package: *pkg, ImportPath: *imp},
		})
		if errs != 0 {
			os.Exit(1)
		}
		return
	}
	var src []byte
	var err error
	if name == "-" {
		src, err = io.ReadAll(os.Stdin)
		name = "stdin.go"
	} else {
		src, err = os.ReadFile(name)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gompcc:", err)
		os.Exit(1)
	}

	opts := transform.Options{Package: *pkg, ImportPath: *imp, Sema: semaMode}
	var output []byte
	if *dump {
		stages, serr := transform.FileStages(name, src, opts)
		if serr != nil {
			fail(src, serr, *maxErrors)
		}
		fmt.Fprint(os.Stderr, stages.Report())
		output = stages.Output
	} else {
		var warns directive.DiagnosticList
		output, warns, err = transform.FileChecked(name, src, opts)
		if err != nil {
			fail(src, err, *maxErrors)
		}
		// Warn-mode sema findings print like errors (position, source
		// line, caret) but do not block the output or the exit code.
		if len(warns) > 0 {
			printDiagnostics(os.Stderr, src, warns, *maxErrors)
		}
	}

	if *out == "" {
		os.Stdout.Write(output)
		return
	}
	if err := os.WriteFile(*out, output, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "gompcc:", err)
		os.Exit(1)
	}
}

// fail reports a transformation failure and exits non-zero. Aggregated
// directive diagnostics get the compiler treatment (position, source line,
// caret, error count); anything else prints as a plain gompcc error.
func fail(src []byte, err error, maxErrors int) {
	diags, ok := err.(directive.DiagnosticList)
	if !ok {
		fmt.Fprintln(os.Stderr, "gompcc:", err)
		os.Exit(1)
	}
	n := printDiagnostics(os.Stderr, src, diags, maxErrors)
	plural := "s"
	if n == 1 {
		plural = ""
	}
	fmt.Fprintf(os.Stderr, "gompcc: %d error%s\n", n, plural)
	os.Exit(1)
}
