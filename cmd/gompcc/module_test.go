package main

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/modpipe/corpusgen"
	"repro/internal/sema"
	"repro/internal/transform"
)

// TestRunModuleSmoke drives whole-module mode the way CI's smoke step
// does: generate a small corpus, transform it cold with a cache, re-run
// warm, and hold the CLI contract — the returned error count is non-zero
// exactly because the corpus contains malformed files, diagnostics print
// compiler-style with carets, and the warm run is all cache hits.
func TestRunModuleSmoke(t *testing.T) {
	root := filepath.Join(t.TempDir(), "corpus")
	m, err := corpusgen.Generate(root, corpusgen.Config{Files: 60, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	cfg := moduleConfig{
		Root:      root,
		OutDir:    filepath.Join(t.TempDir(), "out"),
		CacheDir:  filepath.Join(t.TempDir(), "cache"),
		Workers:   4,
		MaxErrors: 0,
		Transform: transform.Options{Package: "gomp", ImportPath: "repro"},
	}

	var cold strings.Builder
	coldErrs := runModule(&cold, cfg)
	if coldErrs <= 0 {
		t.Fatalf("cold run returned %d errors; corpus has %d malformed files", coldErrs, m.ByKind[corpusgen.Malformed])
	}
	if !strings.Contains(cold.String(), ": error: ") {
		t.Error("cold run printed no compiler-style diagnostics")
	}
	if !strings.Contains(cold.String(), "^") {
		t.Error("cold run printed no caret lines")
	}
	if !strings.Contains(cold.String(), "0 cache hits") {
		t.Errorf("cold stats line should report 0 cache hits:\n%s", lastLine(cold.String()))
	}

	var warm strings.Builder
	warmErrs := runModule(&warm, cfg)
	if warmErrs != coldErrs {
		t.Errorf("warm run returned %d errors, cold returned %d — cached diagnostics must replay", warmErrs, coldErrs)
	}
	wantHits := len(m.Files)
	if !strings.Contains(warm.String(), "(0 transformed, ") {
		t.Errorf("warm stats line should report 0 transformed (all %d cached):\n%s", wantHits, lastLine(warm.String()))
	}
}

// TestRunModuleSemaStrict drives module mode with strict semantic
// analysis over a corpus containing ill-typed directive files: the error
// count grows versus a sema-off run, sema findings print compiler-style,
// and the stats line reports the unit counts. The warm re-run replays
// from the sema cache (0 checked).
func TestRunModuleSemaStrict(t *testing.T) {
	root := filepath.Join(t.TempDir(), "corpus")
	m, err := corpusgen.Generate(root, corpusgen.Config{Files: 60, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if m.ByKind[corpusgen.IllTyped] == 0 {
		t.Fatal("corpus has no ill-typed files; sema smoke is vacuous")
	}
	base := moduleConfig{
		Root:      root,
		Workers:   4,
		MaxErrors: 0,
		Transform: transform.Options{Package: "gomp", ImportPath: "repro"},
	}
	var off strings.Builder
	offErrs := runModule(&off, base)

	strict := base
	strict.Sema = sema.Strict
	strict.CacheDir = filepath.Join(t.TempDir(), "cache")
	var cold strings.Builder
	coldErrs := runModule(&cold, strict)
	if coldErrs <= offErrs {
		t.Errorf("strict sema found no extra errors: %d vs %d sema-off", coldErrs, offErrs)
	}
	if !strings.Contains(cold.String(), "sema strict: ") {
		t.Errorf("stats line missing the sema note:\n%s", lastLine(cold.String()))
	}
	var warm strings.Builder
	warmErrs := runModule(&warm, strict)
	if warmErrs != coldErrs {
		t.Errorf("warm strict run returned %d errors, cold returned %d", warmErrs, coldErrs)
	}
	if !strings.Contains(warm.String(), "(0 checked, ") {
		t.Errorf("warm stats line should report 0 sema checks:\n%s", lastLine(warm.String()))
	}
}

// TestRunModuleSemaStrictExamples is the CI smoke in-process: strict
// semantic analysis over the repository's own examples tree must add zero
// diagnostics — the zero-false-positive bar on real, committed code.
func TestRunModuleSemaStrictExamples(t *testing.T) {
	var out strings.Builder
	errs := runModule(&out, moduleConfig{
		Root:      filepath.Join("..", "..", "examples"),
		Workers:   2,
		Sema:      sema.Strict,
		Transform: transform.Options{Package: "gomp", ImportPath: "repro"},
		Quiet:     true,
	})
	if errs != 0 {
		t.Errorf("strict sema reported %d errors over examples/:\n%s", errs, out.String())
	}
}

// TestRunModuleMaxErrors checks the diagnostic print cap and its
// suppression note.
func TestRunModuleMaxErrors(t *testing.T) {
	root := filepath.Join(t.TempDir(), "corpus")
	if _, err := corpusgen.Generate(root, corpusgen.Config{Files: 50, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	errs := runModule(&out, moduleConfig{
		Root:      root,
		Workers:   2,
		MaxErrors: 1,
		Transform: transform.Options{Package: "gomp", ImportPath: "repro"},
		Quiet:     true,
	})
	if errs <= 1 {
		t.Fatalf("want several errors from a 50-file corpus, got %d", errs)
	}
	if !strings.Contains(out.String(), "too many errors") {
		t.Errorf("-maxerrors 1 with %d errors should print the suppression note:\n%s", errs, out.String())
	}
	if n := strings.Count(out.String(), ": error: "); n != 1 {
		t.Errorf("-maxerrors 1 printed %d diagnostics, want 1", n)
	}
}

func lastLine(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return lines[len(lines)-1]
}
