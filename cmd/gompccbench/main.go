// Command gompccbench measures gompcc's whole-module pipeline at
// production scale and emits BENCH_gompcc.json for the CI perf gate.
//
// It generates the seeded synthetic stress module (internal/modpipe/
// corpusgen — clean + directive + malformed + ill-typed + pathological
// files), then runs the pipeline twice against one cache directory:
//
//   - cold: every file transformed (the files/sec number the gate holds),
//   - warm: same module, unchanged — every file must be a cache hit, and
//     the run must be at least -minspeedup times faster than cold (the
//     incremental-rebuild acceptance bar; default 10x).
//
// A second cold/warm pair runs with strict semantic analysis against its
// own cache directory, pricing the type-checked pipeline (the
// gompcc-sema-* rows): the warm sema run must replay every package unit
// from the sema cache.
//
// The command self-checks: zero recovered panics, every file accounted
// for, full warm hit rate (transform and sema), strict mode finding the
// ill-typed files, and the speedup floors. Any violation exits 1, so the
// CI smoke step is also a correctness assertion, not just a timer.
//
//	go run ./cmd/gompccbench -files 2000 -j 8 -out BENCH_gompcc.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/modpipe"
	"repro/internal/modpipe/corpusgen"
	"repro/internal/sema"
)

type row struct {
	Construct string  `json:"construct"`
	Value     float64 `json:"value"`
}

type report struct {
	Bench   string  `json:"bench"`
	Files   int     `json:"files"`
	Workers int     `json:"workers"`
	Seed    int64   `json:"seed"`
	ColdMs  float64 `json:"cold_ms"`
	WarmMs  float64 `json:"warm_ms"`
	Errors  int     `json:"errors"`
	Results []row   `json:"results"`
}

func main() {
	files := flag.Int("files", 2000, "corpus size in files")
	seed := flag.Int64("seed", 1, "corpus generator seed")
	workers := flag.Int("j", 0, "transform worker count (0 = runtime default)")
	minSpeedup := flag.Float64("minspeedup", 10, "fail when warm is not at least this many times faster than cold")
	out := flag.String("out", "BENCH_gompcc.json", "report path (empty = stdout only)")
	flag.Parse()

	work, err := os.MkdirTemp("", "gompccbench")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(work)
	root := filepath.Join(work, "corpus")
	m, err := corpusgen.Generate(root, corpusgen.Config{Files: *files, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	opts := modpipe.Options{
		Workers:  *workers,
		CacheDir: filepath.Join(work, "cache"),
		OutDir:   filepath.Join(work, "out"),
	}

	coldStart := time.Now()
	cold, err := modpipe.Run(root, opts)
	if err != nil {
		fatal(err)
	}
	coldDur := time.Since(coldStart)

	warmStart := time.Now()
	warm, err := modpipe.Run(root, opts)
	if err != nil {
		fatal(err)
	}
	warmDur := time.Since(warmStart)

	// Self-checks: the bench doubles as the module-mode smoke test.
	ok := true
	check := func(cond bool, format string, args ...any) {
		if !cond {
			fmt.Fprintf(os.Stderr, "gompccbench: FAIL "+format+"\n", args...)
			ok = false
		}
	}
	check(len(cold.Files) == *files, "pipeline saw %d files, corpus has %d", len(cold.Files), *files)
	check(cold.Panics == 0, "%d recovered panics on the cold run", cold.Panics)
	check(warm.Panics == 0, "%d recovered panics on the warm run", warm.Panics)
	check(cold.CacheHits == 0, "cold run had %d cache hits, want 0", cold.CacheHits)
	check(warm.CacheHits == *files, "warm run had %d cache hits, want all %d", warm.CacheHits, *files)
	check(warm.ErrorCount() == cold.ErrorCount(),
		"warm run replayed %d errors, cold reported %d", warm.ErrorCount(), cold.ErrorCount())
	check(cold.ErrorCount() > 0 == (m.ByKind[corpusgen.Malformed] > 0),
		"error count %d inconsistent with %d malformed files", cold.ErrorCount(), m.ByKind[corpusgen.Malformed])
	speedup := float64(coldDur) / float64(warmDur)
	check(speedup >= *minSpeedup, "warm speedup %.1fx below the %.1fx floor (cold %v, warm %v)",
		speedup, *minSpeedup, coldDur, warmDur)

	// Strict-sema pair on its own cache: prices the type-checked pipeline.
	semaOpts := modpipe.Options{
		Workers:  *workers,
		CacheDir: filepath.Join(work, "cache-sema"),
		OutDir:   filepath.Join(work, "out-sema"),
		Sema:     sema.Strict,
	}
	semaColdStart := time.Now()
	semaCold, err := modpipe.Run(root, semaOpts)
	if err != nil {
		fatal(err)
	}
	semaColdDur := time.Since(semaColdStart)
	semaWarmStart := time.Now()
	semaWarm, err := modpipe.Run(root, semaOpts)
	if err != nil {
		fatal(err)
	}
	semaWarmDur := time.Since(semaWarmStart)

	check(semaCold.Panics == 0, "%d recovered panics on the sema cold run", semaCold.Panics)
	check(semaCold.SemaUnits > 0 && semaCold.SemaChecked == semaCold.SemaUnits,
		"sema cold run checked %d of %d units", semaCold.SemaChecked, semaCold.SemaUnits)
	check(semaWarm.SemaChecked == 0 && semaWarm.SemaCacheHits == semaWarm.SemaUnits,
		"sema warm run re-checked %d units (%d hits of %d)", semaWarm.SemaChecked, semaWarm.SemaCacheHits, semaWarm.SemaUnits)
	check(semaWarm.CacheHits == *files, "sema warm run had %d transform cache hits, want all %d", semaWarm.CacheHits, *files)
	check(semaCold.ErrorCount() > cold.ErrorCount() == (m.ByKind[corpusgen.IllTyped] > 0),
		"strict error count %d vs %d sema-off inconsistent with %d ill-typed files",
		semaCold.ErrorCount(), cold.ErrorCount(), m.ByKind[corpusgen.IllTyped])
	check(semaWarm.ErrorCount() == semaCold.ErrorCount(),
		"sema warm run replayed %d errors, cold reported %d", semaWarm.ErrorCount(), semaCold.ErrorCount())
	semaSpeedup := float64(semaColdDur) / float64(semaWarmDur)
	check(semaSpeedup >= *minSpeedup, "sema warm speedup %.1fx below the %.1fx floor (cold %v, warm %v)",
		semaSpeedup, *minSpeedup, semaColdDur, semaWarmDur)

	rate := float64(*files) / coldDur.Seconds()
	semaRate := float64(*files) / semaColdDur.Seconds()
	rep := report{
		Bench:   "gompccbench",
		Files:   *files,
		Workers: *workers,
		Seed:    *seed,
		ColdMs:  float64(coldDur.Microseconds()) / 1e3,
		WarmMs:  float64(warmDur.Microseconds()) / 1e3,
		Errors:  cold.ErrorCount(),
		Results: []row{
			{Construct: "gompcc-files-per-sec", Value: rate},
			{Construct: "gompcc-warm-speedup", Value: speedup},
			{Construct: "gompcc-sema-files-per-sec", Value: semaRate},
			{Construct: "gompcc-sema-warm-speedup", Value: semaSpeedup},
		},
	}
	fmt.Printf("gompccbench: %d files, %d errors: cold %.1fms (%.0f files/s), warm %.1fms (%.0fx)\n",
		*files, cold.ErrorCount(), rep.ColdMs, rate, rep.WarmMs, speedup)
	fmt.Printf("gompccbench: sema strict: %d units, %d errors: cold %.1fms (%.0f files/s), warm %.1fms (%.0fx)\n",
		semaCold.SemaUnits, semaCold.ErrorCount(),
		float64(semaColdDur.Microseconds())/1e3, semaRate,
		float64(semaWarmDur.Microseconds())/1e3, semaSpeedup)

	if *out != "" {
		buf, jerr := json.MarshalIndent(&rep, "", "  ")
		if jerr != nil {
			fatal(jerr)
		}
		if werr := os.WriteFile(*out, append(buf, '\n'), 0o644); werr != nil {
			fatal(werr)
		}
	}
	if !ok {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gompccbench:", err)
	os.Exit(1)
}
