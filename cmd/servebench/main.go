// Command servebench is the serving-workload benchmark: N concurrent client
// goroutines each fire a stream of small parallel-reduction regions through
// one shared runtime, and the report records aggregate throughput and
// p50/p99 region latency (BENCH_serving.json by default). It measures the
// multi-tenant fork path — sharded hot-team pool plus thread-budget arbiter
// — under exactly the contention the single-construct syncbench numbers
// can't see.
//
// Two configurations run back to back: the sharded table (auto-sized, one
// shard per processor) and a single-slot baseline (-shards 1 layout, the
// pre-sharding cache), so the report carries its own before/after
// comparison. cmd/perfgate gates the serve-p50/serve-p99 rows.
//
//	go run ./cmd/servebench -clients 64 -benchtime 200x -out BENCH_serving.json
//	go run ./cmd/servebench -benchtime 1x -out ""        # CI smoke
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/servebench"
)

type row struct {
	Construct string  `json:"construct"`
	NsPerOp   float64 `json:"ns_per_op"`
	Iters     int     `json:"iterations"`
}

type report struct {
	Suite      string            `json:"suite"`
	Clients    int               `json:"clients"`
	GoMaxProcs int               `json:"gomaxprocs"`
	Results    []row             `json:"results"`
	Sharded    servebench.Result `json:"sharded"`
	SingleSlot servebench.Result `json:"single_slot_baseline"`
}

func main() {
	clients := flag.Int("clients", 64, "concurrent client goroutines")
	benchtime := flag.String("benchtime", "200x", "regions per client, go-test style (e.g. 1x, 200x)")
	work := flag.Int("work", 64, "reduction trip count per region")
	threads := flag.Int("threads", 4, "requested team size per region")
	limit := flag.Int("limit", 16, "thread-limit-var (arbiter budget ceiling)")
	out := flag.String("out", "BENCH_serving.json", "output JSON path (empty: stdout only)")
	flag.Parse()

	regions, err := parseBenchtime(*benchtime)
	if err != nil {
		fmt.Fprintln(os.Stderr, "servebench:", err)
		os.Exit(2)
	}

	base := servebench.Config{
		Clients:          *clients,
		RegionsPerClient: regions,
		Work:             *work,
		TeamSize:         *threads,
		ThreadLimit:      *limit,
		Dynamic:          true, // serving wants shrink-don't-wait admission
		Warmup:           min(regions, 50),
	}

	shardedCfg := base // Shards 0: auto
	singleCfg := base
	singleCfg.Shards = 1

	single := run("single-slot", singleCfg)
	sharded := run("sharded", shardedCfg)

	rep := report{
		Suite:      "servebench",
		Clients:    *clients,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Results: []row{
			{"serve-p50", sharded.P50Ns, sharded.Regions},
			{"serve-p99", sharded.P99Ns, sharded.Regions},
			{"serve-mean", sharded.MeanNs, sharded.Regions},
			{"serve-p50-1shard", single.P50Ns, single.Regions},
			{"serve-p99-1shard", single.P99Ns, single.Regions},
		},
		Sharded:    sharded,
		SingleSlot: single,
	}
	if sharded.ThroughputOpsSec < single.ThroughputOpsSec {
		// Informational: on a single-processor runner the two layouts are
		// within noise of each other (one P means no true fork concurrency).
		fmt.Fprintf(os.Stderr, "servebench: note: sharded throughput %.0f/s below single-slot %.0f/s on this run\n",
			sharded.ThroughputOpsSec, single.ThroughputOpsSec)
	}
	if *out == "" {
		return
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "servebench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "servebench:", err)
		os.Exit(1)
	}
}

func run(name string, cfg servebench.Config) servebench.Result {
	res, err := servebench.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "servebench: %s: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Printf("%-12s shards=%-2d  %9.0f regions/s   p50 %8.0f ns   p99 %8.0f ns   shrunk %d serialized %d steals %d\n",
		name, res.Shards, res.ThroughputOpsSec, res.P50Ns, res.P99Ns, res.Shrunk, res.Serialized, res.Steals)
	return res
}

// parseBenchtime accepts the go-test -benchtime iteration form: "200x".
func parseBenchtime(s string) (int, error) {
	cut, ok := strings.CutSuffix(s, "x")
	if !ok {
		return 0, fmt.Errorf("-benchtime %q: want an iteration count like 200x", s)
	}
	n, err := strconv.Atoi(cut)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("-benchtime %q: want a positive iteration count like 200x", s)
	}
	return n, nil
}
