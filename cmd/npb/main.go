// Command npb runs one NAS Parallel Benchmark kernel (or the Mandelbrot
// benchmark) in a chosen implementation variant, printing the NPB-style
// runtime and verification report.
//
//	npb -kernel cg -class A -impl omp -threads 8 -repeat 3
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/harness"
	"repro/internal/npb"
)

func main() {
	kernel := flag.String("kernel", "cg", "kernel: cg, ep, is, mandelbrot, wavefront")
	class := flag.String("class", "S", "problem class: S, W, A, B")
	impl := flag.String("impl", "omp", "implementation: serial, ref, omp")
	threads := flag.Int("threads", runtime.GOMAXPROCS(0), "thread count for parallel variants")
	repeat := flag.Int("repeat", 1, "repetitions (minimum time reported)")
	size := flag.Int("size", 2048, "grid size for -kernel mandelbrot")
	flag.Parse()

	cls, err := npb.ParseClass(*class)
	if err != nil {
		fmt.Fprintln(os.Stderr, "npb:", err)
		os.Exit(2)
	}
	var variant harness.Variant
	switch *impl {
	case "serial":
		variant = harness.Serial
	case "ref":
		variant = harness.Reference
	case "omp":
		variant = harness.GoMP
	default:
		fmt.Fprintln(os.Stderr, "npb: unknown -impl", *impl)
		os.Exit(2)
	}

	all := harness.Kernels(cls, cls, cls, *size)
	idx := map[string]int{"cg": 0, "ep": 1, "is": 2, "mandelbrot": 3, "wavefront": 4}
	i, ok := idx[*kernel]
	if !ok {
		fmt.Fprintln(os.Stderr, "npb: unknown -kernel", *kernel)
		os.Exit(2)
	}
	k := all[i]
	k.Prepare()
	d, status := harness.TimeRun(k, variant, *threads, *repeat)

	fmt.Printf(" %s Benchmark (GoMP reproduction)\n", k.Name)
	fmt.Printf(" Size/class   = %s\n", k.Config)
	fmt.Printf(" Variant      = %s\n", variant)
	fmt.Printf(" Threads      = %d\n", *threads)
	fmt.Printf(" Time in secs = %12.4f\n", d.Seconds())
	fmt.Printf(" Verification = %s\n", status)
	if status == "UNSUCCESSFUL" {
		os.Exit(1)
	}
}
