// Command taskbench runs the task-parallel microbenchmarks (EPCC taskbench
// / BOTS shapes — recursive fib, n-queens, an unbalanced depth-first tree
// walk) over a thread-count sweep and emits the timings as JSON
// (BENCH_tasks.json by default). Each kernel is verified against its serial
// oracle on every run, so the sweep doubles as a conformance stress of the
// work-stealing task layer; any mismatch aborts with a non-zero exit.
//
//	taskbench                  # full sweep 1..8 threads, repeat 3
//	taskbench -smoke -out ""   # CI smoke: tiny inputs, threads 1,2, once
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/icv"
	"repro/internal/taskbench"
)

type point struct {
	Threads   int     `json:"threads"`
	NsPerRun  float64 `json:"ns_per_run"`
	SpeedupT1 float64 `json:"speedup_vs_1t"`
}

type benchResult struct {
	Name     string  `json:"name"`
	Config   string  `json:"config"`
	Check    int64   `json:"check"`
	SerialNs float64 `json:"serial_ns"`
	Points   []point `json:"results"`
}

type report struct {
	Suite      string        `json:"suite"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Repeat     int           `json:"repeat"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// bench is one kernel: serial() is the oracle/baseline, par() the task
// version on a given runtime. Both return the check value.
type bench struct {
	name   string
	config string
	serial func() int64
	par    func(rt *core.Runtime) int64
}

func main() {
	threadList := flag.String("threads", "1,2,3,4,5,6,7,8", "comma-separated team sizes for the sweep")
	repeat := flag.Int("repeat", 3, "repetitions per point (minimum time reported)")
	out := flag.String("out", "BENCH_tasks.json", "output JSON path (empty: stdout only)")
	smoke := flag.Bool("smoke", false, "CI smoke: tiny inputs, threads 1,2, repeat 1")
	flag.Parse()

	threads, err := parseThreads(*threadList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "taskbench:", err)
		os.Exit(2)
	}
	reps := *repeat
	fibN, fibCut := 30, 16
	nqN, nqCut := 10, 3
	treeKids, treeDepth, treeBelow := 64, 15, 6
	if *smoke {
		threads = []int{1, 2}
		reps = 1
		fibN, fibCut = 22, 12
		nqN, nqCut = 8, 2
		treeKids, treeDepth, treeBelow = 16, 10, 4
	}

	benches := []bench{
		{
			name:   "fib",
			config: fmt.Sprintf("n=%d cutoff=%d", fibN, fibCut),
			serial: func() int64 { return taskbench.FibSerial(fibN) },
			par:    func(rt *core.Runtime) int64 { return taskbench.Fib(rt, fibN, fibCut) },
		},
		{
			name:   "nqueens",
			config: fmt.Sprintf("n=%d cutoff=%d", nqN, nqCut),
			serial: func() int64 { return taskbench.NQueensSerial(nqN) },
			par:    func(rt *core.Runtime) int64 { return taskbench.NQueens(rt, nqN, nqCut) },
		},
		{
			name:   "tree",
			config: fmt.Sprintf("rootkids=%d depth=%d serialbelow=%d", treeKids, treeDepth, treeBelow),
			serial: func() int64 { return taskbench.TreeSerial(treeKids, treeDepth) },
			par:    func(rt *core.Runtime) int64 { return taskbench.Tree(rt, treeKids, treeDepth, treeBelow) },
		},
	}

	rep := report{Suite: "taskbench", GoMaxProcs: runtime.GOMAXPROCS(0), Repeat: reps}
	for _, b := range benches {
		rep.Benchmarks = append(rep.Benchmarks, runBench(b, threads, reps))
	}
	if *out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "taskbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "taskbench:", err)
			os.Exit(1)
		}
	}
}

func runBench(b bench, threads []int, reps int) benchResult {
	check, serialNs := timeSerial(b, reps)
	res := benchResult{Name: b.name, Config: b.config, Check: check, SerialNs: serialNs}
	fmt.Printf("%-8s %-36s check=%-10d serial %12.0f ns\n", b.name, b.config, check, serialNs)
	var oneT float64
	for _, n := range threads {
		s := icv.Default()
		s.NumThreads = []int{n}
		rt := core.NewRuntime(s)
		best := 0.0
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			got := b.par(rt)
			ns := float64(time.Since(t0).Nanoseconds())
			if got != check {
				fmt.Fprintf(os.Stderr, "taskbench: %s on %d threads = %d, want %d\n", b.name, n, got, check)
				os.Exit(1)
			}
			if best == 0 || ns < best {
				best = ns
			}
		}
		if n == 1 || oneT == 0 {
			oneT = best
		}
		res.Points = append(res.Points, point{Threads: n, NsPerRun: best, SpeedupT1: oneT / best})
		fmt.Printf("  threads=%d %14.0f ns/run  speedup %.2fx\n", n, best, oneT/best)
	}
	return res
}

func timeSerial(b bench, reps int) (check int64, ns float64) {
	check = b.serial()
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		got := b.serial()
		d := float64(time.Since(t0).Nanoseconds())
		if got != check {
			fmt.Fprintf(os.Stderr, "taskbench: %s serial oracle unstable: %d then %d\n", b.name, check, got)
			os.Exit(1)
		}
		if ns == 0 || d < ns {
			ns = d
		}
	}
	return check, ns
}

func parseThreads(list string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -threads entry %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}
