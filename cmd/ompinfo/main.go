// Command ompinfo prints the runtime's internal control variables in the
// style of OMP_DISPLAY_ENV=true, after applying the OMP_* environment.
package main

import (
	"fmt"
	"os"

	"repro/internal/icv"
)

func main() {
	set, errs := icv.FromEnv(os.LookupEnv)
	for _, err := range errs {
		fmt.Fprintln(os.Stderr, "ompinfo: warning:", err)
	}
	fmt.Print(set.Display())
}
