// Command ompinfo prints the runtime's internal control variables in the
// style of OMP_DISPLAY_ENV=true, after applying the OMP_* environment,
// followed by the device registry the target constructs would see
// (GOMP_SUBPROCESS_DEVICES sizes the subprocess fleet).
package main

import (
	"fmt"
	"os"

	gomp "repro"
	"repro/internal/icv"
)

func main() {
	set, errs := icv.FromEnv(os.LookupEnv)
	for _, err := range errs {
		fmt.Fprintln(os.Stderr, "ompinfo: warning:", err)
	}
	fmt.Print(set.Display())
	fmt.Printf("num-devices = %d (device 0 is the host; default device %d)\n",
		gomp.GetNumDevices(), gomp.GetDefaultDevice())
}
