// Command table1 regenerates the paper's evaluation artifacts: Table 1
// (kernel runtimes, Reference vs GoMP) and, with -speedup, the §3.1 speedup
// curves relative to single-thread execution.
//
//	table1 -class W -size 2048 -threads 8 -repeat 3
//	table1 -speedup -class S -threads 1,2,4,8
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/harness"
	"repro/internal/npb"
)

func main() {
	class := flag.String("class", "S", "NPB class for CG/EP/IS: S, W, A, B")
	size := flag.Int("size", 2048, "Mandelbrot grid size")
	threads := flag.Int("threads", runtime.GOMAXPROCS(0), "thread count for the table")
	repeat := flag.Int("repeat", 3, "repetitions per cell (minimum reported)")
	speedup := flag.Bool("speedup", false, "emit speedup curves instead of the table")
	threadList := flag.String("threadlist", "", "comma-separated thread counts for -speedup (default 1,2,...,GOMAXPROCS)")
	flag.Parse()

	cls, err := npb.ParseClass(*class)
	if err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(2)
	}
	kernels := harness.Kernels(cls, cls, cls, *size)

	if !*speedup {
		rows := harness.RunTable1(kernels, *threads, *repeat)
		fmt.Print(harness.FormatTable1(rows, *threads))
		return
	}

	counts, err := parseThreadList(*threadList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(2)
	}
	var series []harness.SpeedupSeries
	for _, k := range kernels {
		series = append(series, harness.RunSpeedup(k, harness.GoMP, counts, *repeat))
	}
	fmt.Print(harness.FormatSpeedup(series))
}

func parseThreadList(s string) ([]int, error) {
	if s == "" {
		max := runtime.GOMAXPROCS(0)
		var out []int
		for n := 1; n <= max; n *= 2 {
			out = append(out, n)
		}
		if out[len(out)-1] != max {
			out = append(out, max)
		}
		return out, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
