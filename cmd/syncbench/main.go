// Command syncbench is an EPCC-syncbench-style overheads harness: it prices
// the runtime's synchronisation constructs with empty bodies — a bare
// parallel region (fork/join), a bare static worksharing loop inside one
// long-lived region, a bare team barrier, a one-value-per-thread reduction,
// bare tasks — plus EPCC schedbench rows pricing each loop schedule
// (static, dynamic chunk 1, guided, and the work-stealing steal schedule)
// over balanced and imbalanced bodies, and emits the measurements as JSON
// (BENCH_overheads.json by default). The same shapes run under `go test
// -bench 'BenchmarkOverhead|BenchmarkSched'`; this command exists so the
// overhead tables in DESIGN.md can be regenerated standalone and tracked
// across commits.
//
// If the output file already exists and carries a pre_pr_baseline section,
// that section is preserved, so before/after comparisons against the
// pre-hot-team fork path survive regeneration.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	gomp "repro"
	"repro/internal/icv"
	"repro/internal/kmp"
)

type result struct {
	Construct string  `json:"construct"`
	NsPerOp   float64 `json:"ns_per_op"`
	Iters     int     `json:"iterations"`
}

type baseline struct {
	Note    string   `json:"note,omitempty"`
	Results []result `json:"results"`
}

type report struct {
	Suite      string    `json:"suite"`
	Threads    int       `json:"threads"`
	GoMaxProcs int       `json:"gomaxprocs"`
	Results    []result  `json:"results"`
	Baseline   *baseline `json:"pre_pr_baseline,omitempty"`
}

func main() {
	threads := flag.Int("threads", runtime.GOMAXPROCS(0), "team size for the measured regions")
	iters := flag.Int("iters", 200000, "operations per construct measurement")
	out := flag.String("out", "BENCH_overheads.json", "output JSON path (empty: stdout only)")
	flag.Parse()

	s := icv.Default()
	s.NumThreads = []int{*threads}
	rt := gomp.NewRuntime(s)

	rep := report{
		Suite:      "syncbench",
		Threads:    *threads,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Results: []result{
			measureFork(s, *iters),
			measureFor(rt, *iters),
			measureBarrier(rt, *iters),
			measureReduction(rt, *iters),
			measureTask(rt, *iters),
			measureTaskDepend(rt, *iters),
			measureTaskloop(rt, *iters/50),
		},
	}
	rep.Results = append(rep.Results, measureSchedules(rt, *iters/50)...)
	rep.Results = append(rep.Results, measureDoacross(rt, *iters/50)...)
	rep.Results = append(rep.Results, measureTargetHost(*iters/10), measureTargetData(*iters/10))
	for _, r := range rep.Results {
		fmt.Printf("%-10s %10.1f ns/op  (%d iters, %d threads)\n",
			r.Construct, r.NsPerOp, r.Iters, *threads)
	}
	if *out == "" {
		return
	}
	rep.Baseline = previousBaseline(*out)
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "syncbench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "syncbench:", err)
		os.Exit(1)
	}
}

// previousBaseline carries forward the pre_pr_baseline of an existing
// report file, if any.
func previousBaseline(path string) *baseline {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var prev report
	if err := json.Unmarshal(buf, &prev); err != nil {
		return nil
	}
	return prev.Baseline
}

const warmup = 2000

// measureFork prices a bare parallel region on a dedicated pool: the
// steady-state (hot-team, same-size repeat) fork→join round trip.
func measureFork(s *icv.Set, iters int) result {
	pool := kmp.NewPool(s)
	micro := func(tm *kmp.Team, tid int) {}
	for i := 0; i < warmup; i++ {
		pool.Fork(nil, kmp.ForkSpec{}, micro)
	}
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		pool.Fork(nil, kmp.ForkSpec{}, micro)
	}
	return result{"fork", perOp(t0, iters), iters}
}

// measureFor prices a bare default-schedule worksharing loop inside one
// long-lived region; every member meets every construct, the master times.
func measureFor(rt *gomp.Runtime, iters int) result {
	body := func(lo, hi int) {}
	var ns float64
	rt.Parallel(func(t *gomp.Thread) {
		for i := 0; i < warmup; i++ {
			t.ForChunks(1024, body)
		}
		t.Barrier()
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			t.ForChunks(1024, body)
		}
		if t.Num() == 0 {
			ns = perOp(t0, iters)
		}
	})
	return result{"for", ns, iters}
}

// measureBarrier prices a bare team barrier inside one region.
func measureBarrier(rt *gomp.Runtime, iters int) result {
	var ns float64
	rt.Parallel(func(t *gomp.Thread) {
		for i := 0; i < warmup; i++ {
			t.Barrier()
		}
		t.Barrier()
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			t.Barrier()
		}
		if t.Num() == 0 {
			ns = perOp(t0, iters)
		}
	})
	return result{"barrier", ns, iters}
}

// measureReduction prices a one-value-per-member reduction (the reduction
// clause on a bare parallel construct).
func measureReduction(rt *gomp.Runtime, iters int) result {
	var ns float64
	rt.Parallel(func(t *gomp.Thread) {
		for i := 0; i < warmup; i++ {
			gomp.Reduce(t, gomp.OpSum, 1.0)
		}
		t.Barrier()
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			gomp.Reduce(t, gomp.OpSum, 1.0)
		}
		if t.Num() == 0 {
			ns = perOp(t0, iters)
		}
	})
	return result{"reduction", ns, iters}
}

// measureTask prices a bare empty task (EPCC taskbench's parallel task
// generation): the master spawns, every other member drains from the
// region-end barrier, taskwait settles the tail.
func measureTask(rt *gomp.Runtime, iters int) result {
	var ns float64
	rt.Parallel(func(t *gomp.Thread) {
		if t.Num() != 0 {
			return
		}
		for i := 0; i < warmup; i++ {
			t.Task(func(*gomp.Thread) {})
		}
		t.Taskwait()
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			t.Task(func(*gomp.Thread) {})
		}
		t.Taskwait()
		ns = perOp(t0, iters)
	})
	return result{"task", ns, iters}
}

// measureTaskDepend prices a task carrying one inout dependence — a fully
// serialised chain through the dephash, the dependency engine's worst case.
func measureTaskDepend(rt *gomp.Runtime, iters int) result {
	var x int
	var ns float64
	rt.Parallel(func(t *gomp.Thread) {
		if t.Num() != 0 {
			return
		}
		for i := 0; i < warmup; i++ {
			t.Task(func(*gomp.Thread) {}, gomp.DependInOut(&x))
		}
		t.Taskwait()
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			t.Task(func(*gomp.Thread) {}, gomp.DependInOut(&x))
		}
		t.Taskwait()
		ns = perOp(t0, iters)
	})
	return result{"task-depend", ns, iters}
}

// measureTaskloop prices a whole taskloop construct — 64 iterations split
// into grainsize-16 chunks under the implicit taskgroup — per op. The chunk
// bodies share one func(int), so the op prices the loop-form spawn path:
// recycled Units carrying bounds, no per-chunk closures, recycled taskgroup.
func measureTaskloop(rt *gomp.Runtime, iters int) result {
	if iters < 1 {
		iters = 1
	}
	body := func(i int) {}
	var ns float64
	rt.Parallel(func(t *gomp.Thread) {
		if t.Num() != 0 {
			return
		}
		for i := 0; i < warmup/10; i++ {
			t.Taskloop(64, 16, body)
		}
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			t.Taskloop(64, 16, body)
		}
		ns = perOp(t0, iters)
	})
	return result{"taskloop", ns, iters}
}

// measureSchedules is the EPCC schedbench table: one row per (schedule,
// body) pair, each op a whole trip-4096 worksharing loop inside one
// long-lived region. The balanced body is a few flops per iteration; the
// imbalanced body's cost grows with the iteration's position, the shape
// that forces dynamic-style scheduling. The headline pair is dynamic chunk
// 1 (one shared atomic per iteration) against steal (batched local pops +
// steal-half), which must win on the imbalanced body.
func measureSchedules(rt *gomp.Runtime, iters int) []result {
	cases := []struct {
		name  string
		sched icv.Schedule
	}{
		{"sched-static", icv.Schedule{Kind: icv.StaticSched}},
		{"sched-dynamic1", icv.Schedule{Kind: icv.DynamicSched, Chunk: 1}},
		{"sched-guided", icv.Schedule{Kind: icv.GuidedSched}},
		{"sched-steal", icv.Schedule{Kind: icv.StealSched}},
	}
	var out []result
	for _, imbalanced := range []bool{false, true} {
		suffix := "-balanced"
		if imbalanced {
			suffix = "-imbalanced"
		}
		for _, c := range cases {
			out = append(out, measureOneSchedule(rt, c.name+suffix, c.sched, imbalanced, iters))
		}
	}
	return out
}

func measureOneSchedule(rt *gomp.Runtime, name string, sched icv.Schedule, imbalanced bool, iters int) result {
	const trip = 4096
	if iters < 1 {
		iters = 1
	}
	var sink atomic.Int64 // shared across team threads; keep the body's work observable
	body := func(lo, hi int) {
		acc := 0.0
		for k := lo; k < hi; k++ {
			acc += float64(k)
			if imbalanced {
				for spin := k & 63; spin > 0; spin-- {
					acc = acc*1.0000001 + 1
				}
			}
		}
		sink.Add(int64(acc))
	}
	opt := gomp.Schedule(sched.Kind, sched.Chunk)
	var ns float64
	rt.Parallel(func(t *gomp.Thread) {
		for i := 0; i < warmup/10; i++ {
			t.ForChunks(trip, body, opt)
		}
		t.Barrier()
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			t.ForChunks(trip, body, opt)
		}
		if t.Num() == 0 {
			ns = perOp(t0, iters)
		}
	})
	_ = sink.Load()
	return result{name, ns, iters}
}

// measureDoacross prices the doacross (ordered(n) + depend(sink)/
// depend(source)) flag protocol, one whole trip-1024 ForDoacross loop per
// op: the chain row is the fully serialised worst case (every iteration
// sinks on its predecessor — linearize + flag wait + post per iteration),
// the post row is the sink-free floor (flag-vector reset + one post per
// iteration, full parallelism).
func measureDoacross(rt *gomp.Runtime, iters int) []result {
	const trip = 1024
	if iters < 1 {
		iters = 1
	}
	loops := []gomp.Loop{{Begin: 0, End: trip, Step: 1}}
	chain := func(ix []int64, d *gomp.DoacrossCtx) {
		d.Wait(ix[0] - 1)
		d.Post()
	}
	post := func(ix []int64, d *gomp.DoacrossCtx) { d.Post() }
	var out []result
	for _, c := range []struct {
		name string
		body func([]int64, *gomp.DoacrossCtx)
	}{
		{"doacross-chain", chain},
		{"doacross-post", post},
	} {
		var ns float64
		rt.Parallel(func(t *gomp.Thread) {
			for i := 0; i < warmup/10; i++ {
				t.ForDoacross(loops, c.body)
			}
			t.Barrier()
			t0 := time.Now()
			for i := 0; i < iters; i++ {
				t.ForDoacross(loops, c.body)
			}
			if t.Num() == 0 {
				ns = perOp(t0, iters)
			}
		})
		out = append(out, result{c.name, ns, iters})
	}
	return out
}

// measureTargetHost prices a bare target region on the host device: device
// resolution, one map(tofrom:) present-table round trip, and an empty
// closure-kernel launch — the constant the offload layer adds before any
// kernel work.
func measureTargetHost(iters int) result {
	x := make([]float64, 16)
	op := func() {
		if err := gomp.TargetRegion(0, gomp.Launch{},
			func(rt *gomp.Runtime, cfg gomp.Launch, env *gomp.TargetEnv) {},
			gomp.MapToFrom("x", x)); err != nil {
			fmt.Fprintln(os.Stderr, "syncbench: target-host:", err)
			os.Exit(1)
		}
	}
	for i := 0; i < warmup; i++ {
		op()
	}
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		op()
	}
	return result{"target-host", perOp(t0, iters), iters}
}

// measureTargetData prices an empty structured device data environment on
// the host: enter + exit of one map(tofrom:) item with no kernel launch.
func measureTargetData(iters int) result {
	x := make([]float64, 16)
	op := func() {
		if err := gomp.TargetData(0, nil, gomp.MapToFrom("x", x)); err != nil {
			fmt.Fprintln(os.Stderr, "syncbench: target-data:", err)
			os.Exit(1)
		}
	}
	for i := 0; i < warmup; i++ {
		op()
	}
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		op()
	}
	return result{"target-data", perOp(t0, iters), iters}
}

func perOp(t0 time.Time, iters int) float64 {
	return float64(time.Since(t0).Nanoseconds()) / float64(iters)
}
