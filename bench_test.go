// Benchmarks regenerating the paper's evaluation artifacts (see DESIGN.md's
// per-experiment index):
//
//   - BenchmarkTable1_*: Table 1 — kernel runtimes, Reference (goroutines)
//     vs GoMP (OpenMP runtime), one pair per kernel.
//   - BenchmarkSpeedup_*: the §3.1 speedup metric — each kernel at
//     increasing thread counts (relative speedup = t1/tN across sub-runs).
//   - BenchmarkAblation_*: A1 barrier algorithms, A2 schedule choice on
//     the imbalanced Mandelbrot rows, A3 reduction strategies, A4 hot-team
//     fork-join reuse, and the E5 interop call overhead.
//
// Problem sizes are class S / small grids so the full suite runs in
// minutes; cmd/table1 -class A reproduces the table at benchmark scale.
package gomp_test

import (
	"runtime"
	"sync"
	"testing"

	gomp "repro"
	"repro/internal/barrier"
	"repro/internal/harness"
	"repro/internal/icv"
	"repro/internal/kmp"
	"repro/internal/mandelbrot"
	"repro/internal/npb"
	"repro/internal/reduction"
	"repro/internal/taskbench"
)

func benchRuntime(n int) *gomp.Runtime {
	s := icv.Default()
	s.NumThreads = []int{n}
	return gomp.NewRuntime(s)
}

func maxThreads() int { return runtime.GOMAXPROCS(0) }

// --- Table 1 (E1) ---

func benchKernel(b *testing.B, idx int, v harness.Variant) {
	b.Helper()
	ks := harness.Kernels(npb.ClassS, npb.ClassS, npb.ClassS, 512)
	k := ks[idx]
	k.Prepare()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if status := k.Run(v, maxThreads()); status == "UNSUCCESSFUL" {
			b.Fatalf("%s %v failed verification", k.Name, v)
		}
	}
}

func BenchmarkTable1_CG_Reference(b *testing.B)         { benchKernel(b, 0, harness.Reference) }
func BenchmarkTable1_CG_GoMP(b *testing.B)              { benchKernel(b, 0, harness.GoMP) }
func BenchmarkTable1_EP_Reference(b *testing.B)         { benchKernel(b, 1, harness.Reference) }
func BenchmarkTable1_EP_GoMP(b *testing.B)              { benchKernel(b, 1, harness.GoMP) }
func BenchmarkTable1_IS_Reference(b *testing.B)         { benchKernel(b, 2, harness.Reference) }
func BenchmarkTable1_IS_GoMP(b *testing.B)              { benchKernel(b, 2, harness.GoMP) }
func BenchmarkTable1_Mandelbrot_Reference(b *testing.B) { benchKernel(b, 3, harness.Reference) }
func BenchmarkTable1_Mandelbrot_GoMP(b *testing.B)      { benchKernel(b, 3, harness.GoMP) }

// --- Speedup curves (E2) ---

func benchSpeedup(b *testing.B, idx int) {
	b.Helper()
	ks := harness.Kernels(npb.ClassS, npb.ClassS, npb.ClassS, 512)
	k := ks[idx]
	k.Prepare()
	for _, n := range speedupThreadCounts() {
		b.Run(threadLabel(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k.Run(harness.GoMP, n)
			}
		})
	}
}

func speedupThreadCounts() []int {
	max := maxThreads()
	counts := []int{1}
	for n := 2; n <= max; n *= 2 {
		counts = append(counts, n)
	}
	if counts[len(counts)-1] != max {
		counts = append(counts, max)
	}
	return counts
}

func threadLabel(n int) string {
	return "threads-" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func BenchmarkSpeedup_CG(b *testing.B)         { benchSpeedup(b, 0) }
func BenchmarkSpeedup_EP(b *testing.B)         { benchSpeedup(b, 1) }
func BenchmarkSpeedup_IS(b *testing.B)         { benchSpeedup(b, 2) }
func BenchmarkSpeedup_Mandelbrot(b *testing.B) { benchSpeedup(b, 3) }

// --- A1: barrier algorithm ablation ---

func benchBarrierKind(b *testing.B, kind barrier.Kind) {
	n := maxThreads()
	if n < 2 {
		n = 2
	}
	bar := barrier.New(kind, n, icv.PolicyAuto)
	var wg sync.WaitGroup
	iters := b.N
	b.ResetTimer()
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				bar.Wait(id)
			}
		}(id)
	}
	wg.Wait()
}

func BenchmarkAblation_Barrier_Central(b *testing.B) { benchBarrierKind(b, barrier.CentralKind) }
func BenchmarkAblation_Barrier_Tree(b *testing.B)    { benchBarrierKind(b, barrier.TreeKind) }
func BenchmarkAblation_Barrier_Dissemination(b *testing.B) {
	benchBarrierKind(b, barrier.DisseminationKind)
}

// --- A2: schedule ablation on the imbalanced Mandelbrot rows ---

func benchSchedule(b *testing.B, s icv.Schedule) {
	rt := benchRuntime(maxThreads())
	spec := mandelbrot.DefaultSpec(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mandelbrot.OMPSchedule(rt, spec, s)
	}
}

func BenchmarkAblation_Schedule_StaticBlock(b *testing.B) {
	benchSchedule(b, icv.Schedule{Kind: icv.StaticSched})
}
func BenchmarkAblation_Schedule_StaticCyclic1(b *testing.B) {
	benchSchedule(b, icv.Schedule{Kind: icv.StaticSched, Chunk: 1})
}
func BenchmarkAblation_Schedule_Dynamic1(b *testing.B) {
	benchSchedule(b, icv.Schedule{Kind: icv.DynamicSched, Chunk: 1})
}
func BenchmarkAblation_Schedule_Guided(b *testing.B) {
	benchSchedule(b, icv.Schedule{Kind: icv.GuidedSched})
}
func BenchmarkAblation_Schedule_Steal(b *testing.B) {
	benchSchedule(b, icv.Schedule{Kind: icv.StealSched})
}

// BenchmarkAblation_Schedule_CollapsedSteal renders through the flattened
// collapse(2) pixel space fed to the work-stealing scheduler — pixel-granular
// balance without a shared cursor.
func BenchmarkAblation_Schedule_CollapsedSteal(b *testing.B) {
	rt := benchRuntime(maxThreads())
	spec := mandelbrot.DefaultSpec(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mandelbrot.OMPCollapsed(rt, spec, icv.Schedule{Kind: icv.StealSched})
	}
}

// --- A3: reduction strategy ablation ---

func benchReduction(b *testing.B, strat reduction.Strategy) {
	rt := benchRuntime(maxThreads())
	const n = 1 << 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink := reduction.NewSharedFloat64(strat, reduction.Sum, rt.MaxThreads())
		rt.Parallel(func(t *gomp.Thread) {
			t.For(n, func(j int) {
				sink.Contribute(t.Num(), 1.0)
			})
		})
		if sink.Result() != n {
			b.Fatal("reduction lost updates")
		}
	}
}

func BenchmarkAblation_Reduction_Partials(b *testing.B) {
	benchReduction(b, reduction.StrategyPartials)
}
func BenchmarkAblation_Reduction_Atomic(b *testing.B) { benchReduction(b, reduction.StrategyAtomic) }
func BenchmarkAblation_Reduction_Critical(b *testing.B) {
	benchReduction(b, reduction.StrategyCritical)
}

// --- A4: fork-join overhead, hot team vs fresh workers vs raw goroutines ---

func BenchmarkAblation_ForkJoin_HotTeam(b *testing.B) {
	pool := kmp.NewPool(nil)
	n := maxThreads()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.Fork(nil, kmp.ForkSpec{NumThreads: n}, func(tm *kmp.Team, tid int) {})
	}
}

func BenchmarkAblation_ForkJoin_FreshPool(b *testing.B) {
	n := maxThreads()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool := kmp.NewPool(nil)
		pool.Fork(nil, kmp.ForkSpec{NumThreads: n}, func(tm *kmp.Team, tid int) {})
		b.StopTimer()
		pool.Shutdown()
		b.StartTimer()
	}
}

func BenchmarkAblation_ForkJoin_RawGoroutines(b *testing.B) {
	n := maxThreads()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for t := 0; t < n; t++ {
			wg.Add(1)
			go func() { defer wg.Done() }()
		}
		wg.Wait()
	}
}

// --- E5: interop call overhead ---

func BenchmarkInterop_RegistryCall(b *testing.B) {
	proc, err := npb.FortranObjects.Resolve("norms_")
	if err != nil {
		b.Fatal(err)
	}
	nw := [2]int{64, 1}
	x := make([]float64, 64)
	z := make([]float64, 64)
	var xz, zz float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proc.MustCall(&nw, x, z, &xz, &zz)
	}
}

func BenchmarkInterop_DirectCall(b *testing.B) {
	// The same computation without the registry/reflection layer, to
	// price the interop path.
	nw := [2]int{64, 1}
	x := make([]float64, 64)
	z := make([]float64, 64)
	var xz, zz float64
	direct := func(nw *[2]int, x, z []float64, xz, zz *float64) {
		a, c := 0.0, 0.0
		for j := 0; j < nw[0]; j++ {
			a += x[j] * z[j]
			c += z[j] * z[j]
		}
		*xz, *zz = a, c
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		direct(&nw, x, z, &xz, &zz)
	}
}

// --- per-iteration vs chunk-granular worksharing (ForChunks rationale) ---

func BenchmarkAblation_Granularity_PerIteration(b *testing.B) {
	rt := benchRuntime(maxThreads())
	data := make([]float64, 1<<18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Parallel(func(t *gomp.Thread) {
			t.For(len(data), func(j int) { data[j] = float64(j) * 0.5 })
		})
	}
}

func BenchmarkAblation_Granularity_PerChunk(b *testing.B) {
	rt := benchRuntime(maxThreads())
	data := make([]float64, 1<<18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Parallel(func(t *gomp.Thread) {
			t.ForChunks(len(data), func(lo, hi int) {
				for j := lo; j < hi; j++ {
					data[j] = float64(j) * 0.5
				}
			})
		})
	}
}

// --- EPCC syncbench-style construct overhead benchmarks ---
//
// These isolate the runtime's per-construct cost with empty bodies, the
// methodology of the EPCC OpenMP microbenchmark suite (syncbench): Fork is a
// bare parallel region, For a bare worksharing loop inside one long-lived
// region, Barrier a bare team barrier, Reduction a one-value-per-thread
// combine. cmd/syncbench runs the same measurements standalone and emits
// BENCH_overheads.json.

func BenchmarkOverhead_Fork(b *testing.B) {
	s := icv.Default()
	s.NumThreads = []int{maxThreads()}
	pool := kmp.NewPool(s)
	micro := func(tm *kmp.Team, tid int) {}
	pool.Fork(nil, kmp.ForkSpec{}, micro) // warm the hot team
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.Fork(nil, kmp.ForkSpec{}, micro)
	}
}

func BenchmarkOverhead_For(b *testing.B) {
	rt := benchRuntime(maxThreads())
	body := func(lo, hi int) {}
	b.ReportAllocs()
	b.ResetTimer()
	rt.Parallel(func(t *gomp.Thread) {
		for i := 0; i < b.N; i++ {
			t.ForChunks(1024, body)
		}
	})
}

func BenchmarkOverhead_Barrier(b *testing.B) {
	rt := benchRuntime(maxThreads())
	b.ReportAllocs()
	b.ResetTimer()
	rt.Parallel(func(t *gomp.Thread) {
		for i := 0; i < b.N; i++ {
			t.Barrier()
		}
	})
}

func BenchmarkOverhead_Reduction(b *testing.B) {
	rt := benchRuntime(maxThreads())
	b.ReportAllocs()
	b.ResetTimer()
	rt.Parallel(func(t *gomp.Thread) {
		for i := 0; i < b.N; i++ {
			gomp.Reduce(t, gomp.OpSum, 1.0)
		}
	})
}

// --- public API micro-benchmarks ---

func BenchmarkParallelFor(b *testing.B) {
	rt := benchRuntime(maxThreads())
	data := make([]float64, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Parallel(func(t *gomp.Thread) {
			t.For(len(data), func(j int) { data[j] = float64(j) })
		})
	}
}

func BenchmarkReduceFor(b *testing.B) {
	rt := benchRuntime(maxThreads())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum float64
		rt.Parallel(func(t *gomp.Thread) {
			s := gomp.ReduceFor(t, 1<<16, gomp.OpSum, func(j int, acc float64) float64 {
				return acc + float64(j)
			})
			t.Master(func() { sum = s })
		})
		_ = sum
	}
}

func BenchmarkTable1_Wavefront_Reference(b *testing.B) { benchKernel(b, 4, harness.Reference) }
func BenchmarkTable1_Wavefront_GoMP(b *testing.B)      { benchKernel(b, 4, harness.GoMP) }
func BenchmarkSpeedup_Wavefront(b *testing.B)          { benchSpeedup(b, 4) }

// BenchmarkOverhead_Task prices a bare empty task: the master generates
// tasks while the other members drain them from the region-end barrier
// (EPCC taskbench's parallel task generation shape).
func BenchmarkOverhead_Task(b *testing.B) {
	rt := benchRuntime(maxThreads())
	b.ReportAllocs()
	b.ResetTimer()
	rt.Parallel(func(t *gomp.Thread) {
		if t.Num() != 0 {
			return
		}
		for i := 0; i < b.N; i++ {
			t.Task(func(*gomp.Thread) {})
		}
		t.Taskwait()
	})
}

// BenchmarkOverhead_TaskDepend prices a task carrying one inout dependence:
// the serialised chain through the dephash (registration + release), the
// worst case for the dependency engine.
func BenchmarkOverhead_TaskDepend(b *testing.B) {
	rt := benchRuntime(maxThreads())
	var x int
	b.ReportAllocs()
	b.ResetTimer()
	rt.Parallel(func(t *gomp.Thread) {
		if t.Num() != 0 {
			return
		}
		for i := 0; i < b.N; i++ {
			t.Task(func(*gomp.Thread) {}, gomp.DependInOut(&x))
		}
		t.Taskwait()
	})
}

// BenchmarkOverhead_Taskloop prices a whole trip-64 grainsize-16 taskloop
// (implicit taskgroup included): the loop-form spawn path where chunk bounds
// ride in the recycled Unit and every chunk shares one func(int) body.
func BenchmarkOverhead_Taskloop(b *testing.B) {
	rt := benchRuntime(maxThreads())
	body := func(i int) {}
	b.ReportAllocs()
	b.ResetTimer()
	rt.Parallel(func(t *gomp.Thread) {
		if t.Num() != 0 {
			return
		}
		for i := 0; i < b.N; i++ {
			t.Taskloop(64, 16, body)
		}
	})
}

// --- EPCC taskbench / BOTS task microbenchmarks (cmd/taskbench) ---
//
// Oracle-checked task-tree workloads; cmd/taskbench runs the same kernels
// over a 1..8-thread sweep and emits BENCH_tasks.json. Here they run at
// GOMAXPROCS threads so `-bench BenchmarkTasks -benchtime=1x` doubles as a
// correctness smoke of the work-stealing spawn tree.

func BenchmarkTasks_Fib(b *testing.B) {
	rt := benchRuntime(maxThreads())
	want := taskbench.FibSerial(26)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := taskbench.Fib(rt, 26, 14); got != want {
			b.Fatalf("fib(26) = %d, want %d", got, want)
		}
	}
}

func BenchmarkTasks_NQueens(b *testing.B) {
	rt := benchRuntime(maxThreads())
	want := taskbench.NQueensSerial(9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := taskbench.NQueens(rt, 9, 3); got != want {
			b.Fatalf("nqueens(9) = %d, want %d", got, want)
		}
	}
}

func BenchmarkTasks_Tree(b *testing.B) {
	rt := benchRuntime(maxThreads())
	want := taskbench.TreeSerial(32, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := taskbench.Tree(rt, 32, 12, 5); got != want {
			b.Fatalf("tree(32,12) = %d, want %d", got, want)
		}
	}
}

// BenchmarkOverhead_Doacross prices the doacross flag protocol at its worst
// case: a fully serialised trip-1024 chain (every iteration sinks on its
// predecessor), one whole loop per op — sink linearization + flag wait +
// post per iteration, plus the per-construct flag-vector reset.
func BenchmarkOverhead_Doacross(b *testing.B) {
	rt := benchRuntime(maxThreads())
	loops := []gomp.Loop{{Begin: 0, End: 1024, Step: 1}}
	body := func(ix []int64, d *gomp.DoacrossCtx) {
		d.Wait(ix[0] - 1)
		d.Post()
	}
	b.ReportAllocs()
	b.ResetTimer()
	rt.Parallel(func(t *gomp.Thread) {
		for i := 0; i < b.N; i++ {
			t.ForDoacross(loops, body)
		}
	})
}

// BenchmarkOverhead_DoacrossPost prices the sink-free floor of the same
// loop: flag-vector reset plus one post per iteration, no waits — the
// doacross tax on iterations that only produce.
func BenchmarkOverhead_DoacrossPost(b *testing.B) {
	rt := benchRuntime(maxThreads())
	loops := []gomp.Loop{{Begin: 0, End: 1024, Step: 1}}
	body := func(ix []int64, d *gomp.DoacrossCtx) { d.Post() }
	b.ReportAllocs()
	b.ResetTimer()
	rt.Parallel(func(t *gomp.Thread) {
		for i := 0; i < b.N; i++ {
			t.ForDoacross(loops, body)
		}
	})
}

// BenchmarkOverhead_TargetHost prices a bare target region on the host
// device: device resolution, one map(tofrom:) present-table round trip and
// an empty closure-kernel launch — the constant the offload layer adds on
// top of the kernel's own work.
func BenchmarkOverhead_TargetHost(b *testing.B) {
	x := make([]float64, 16)
	kernel := func(rt *gomp.Runtime, cfg gomp.Launch, env *gomp.TargetEnv) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := gomp.TargetRegion(0, gomp.Launch{}, kernel, gomp.MapToFrom("x", x)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverhead_TargetData prices an empty structured device data
// environment on the host: enter + exit of one map(tofrom:) item, no
// kernel.
func BenchmarkOverhead_TargetData(b *testing.B) {
	x := make([]float64, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := gomp.TargetData(0, nil, gomp.MapToFrom("x", x)); err != nil {
			b.Fatal(err)
		}
	}
}
