// Steady-state allocation regression guards for the fork/join hot path.
//
// The hot-team cache (internal/kmp) makes the fork→for→barrier→join cycle
// allocation-free once a team of the right shape exists: Fork revives the
// cached team with one atomic Swap, workers are released through per-worker
// epoch doors, worksharing state lives in a pre-allocated ring whose loop
// schedulers reset in place, and the join is the region-end barrier. These
// tests pin that property with testing.AllocsPerRun so a regression (a new
// per-fork closure, a map rebuild, a fresh scheduler) fails loudly.
//
// AllocsPerRun counts mallocs process-wide, so team members other than the
// measuring goroutine participate in lockstep: AllocsPerRun calls f once as
// a warm-up plus `runs` measured times, hence the runs+1 loops on the
// non-measuring members.
package gomp_test

import (
	"testing"
	"time"

	gomp "repro"
	"repro/internal/icv"
	"repro/internal/kmp"
)

const allocRuns = 200

// warmForkPath brings the pool to steady state: the hot team is built and
// each worker has slept at least once, so per-goroutine runtime timers are
// allocated outside the measurement window.
func warmForkPath(pool *kmp.Pool, micro func(*kmp.Team, int)) {
	for i := 0; i < 8; i++ {
		pool.Fork(nil, kmp.ForkSpec{}, micro)
	}
	time.Sleep(3 * time.Millisecond)
	pool.Fork(nil, kmp.ForkSpec{}, micro)
}

func TestSteadyStateForkAllocFree(t *testing.T) {
	for _, n := range []int{1, 4} {
		s := icv.Default()
		s.NumThreads = []int{n}
		pool := kmp.NewPool(s)
		micro := func(tm *kmp.Team, tid int) {}
		warmForkPath(pool, micro)
		avg := testing.AllocsPerRun(allocRuns, func() {
			pool.Fork(nil, kmp.ForkSpec{}, micro)
		})
		if avg != 0 {
			t.Errorf("steady-state Fork (n=%d, same-size repeat): %v allocs/op, want 0", n, avg)
		}
		pool.Shutdown()
	}
}

func TestSteadyStateStaticForAllocFree(t *testing.T) {
	s := icv.Default()
	s.NumThreads = []int{2}
	rt := gomp.NewRuntime(s)
	body := func(lo, hi int) {}
	// Warm region: populate every worksharing ring slot's cached scheduler
	// and let workers allocate their sleep timers.
	rt.Parallel(func(th *gomp.Thread) {
		for i := 0; i < 16; i++ {
			th.ForChunks(256, body)
		}
	})
	time.Sleep(3 * time.Millisecond)
	var avg float64
	rt.Parallel(func(th *gomp.Thread) {
		if th.Num() == 0 {
			avg = testing.AllocsPerRun(allocRuns, func() {
				th.ForChunks(256, body)
			})
		} else {
			for i := 0; i < allocRuns+1; i++ {
				th.ForChunks(256, body)
			}
		}
	})
	if avg != 0 {
		t.Errorf("steady-state static For: %v allocs/op, want 0", avg)
	}
}

func TestSteadyStateBarrierAllocFree(t *testing.T) {
	s := icv.Default()
	s.NumThreads = []int{2}
	rt := gomp.NewRuntime(s)
	rt.Parallel(func(th *gomp.Thread) {
		for i := 0; i < 16; i++ {
			th.Barrier()
		}
	})
	time.Sleep(3 * time.Millisecond)
	var avg float64
	rt.Parallel(func(th *gomp.Thread) {
		if th.Num() == 0 {
			avg = testing.AllocsPerRun(allocRuns, func() {
				th.Barrier()
			})
		} else {
			for i := 0; i < allocRuns+1; i++ {
				th.Barrier()
			}
		}
	})
	if avg != 0 {
		t.Errorf("steady-state Barrier: %v allocs/op, want 0", avg)
	}
}

// TestSteadyStateOrderedAllocFree pins the recycled per-thread OrderedCtx:
// an ordered loop used to heap-allocate one ctx per iteration on both the
// parallel and sequential paths.
func TestSteadyStateOrderedAllocFree(t *testing.T) {
	s := icv.Default()
	s.NumThreads = []int{2}
	rt := gomp.NewRuntime(s)
	body := func(i int, ord *gomp.OrderedCtx) { ord.Do(func() {}) }
	rt.Parallel(func(th *gomp.Thread) {
		for i := 0; i < 16; i++ {
			th.ForOrdered(64, body)
		}
	})
	time.Sleep(3 * time.Millisecond)
	var avg float64
	rt.Parallel(func(th *gomp.Thread) {
		if th.Num() == 0 {
			avg = testing.AllocsPerRun(allocRuns, func() {
				th.ForOrdered(64, body)
			})
		} else {
			for i := 0; i < allocRuns+1; i++ {
				th.ForOrdered(64, body)
			}
		}
	})
	if avg != 0 {
		t.Errorf("steady-state ForOrdered: %v allocs/op, want 0", avg)
	}
}

// TestSteadyStateDoacrossAllocFree pins the recycled doacross machinery:
// the flag vector, linearization tables and ctx live on the worksharing
// ring entry and the Thread, so a steady-state pipelined loop — including
// its variadic sink Waits — allocates nothing.
func TestSteadyStateDoacrossAllocFree(t *testing.T) {
	s := icv.Default()
	s.NumThreads = []int{2}
	rt := gomp.NewRuntime(s)
	loops := []gomp.Loop{{Begin: 0, End: 64, Step: 1}}
	body := func(ix []int64, d *gomp.DoacrossCtx) {
		d.Wait(ix[0] - 1)
		d.Post()
	}
	rt.Parallel(func(th *gomp.Thread) {
		for i := 0; i < 16; i++ {
			th.ForDoacross(loops, body)
		}
	})
	time.Sleep(3 * time.Millisecond)
	var avg float64
	rt.Parallel(func(th *gomp.Thread) {
		if th.Num() == 0 {
			avg = testing.AllocsPerRun(allocRuns, func() {
				th.ForDoacross(loops, body)
			})
		} else {
			for i := 0; i < allocRuns+1; i++ {
				th.ForDoacross(loops, body)
			}
		}
	})
	if avg != 0 {
		t.Errorf("steady-state ForDoacross: %v allocs/op, want 0", avg)
	}
}

// Steady-state task spawn/complete allocation guards. The task fast path is
// allocation-free: Units and dephash states come from per-thread free lists
// (internal/task/recycle.go), the body func rides in the Unit's User field,
// depend lists are assembled in a per-Thread scratch buffer, and the
// per-execution Thread contexts are recycled on a per-member stack. These
// guards pin all of that at zero so any regression (a per-spawn closure, a
// re-boxed option, a dephash rebuilt per task) fails loudly. The serial
// team makes the drain deterministic: spawn publishes to the deque,
// taskwait executes.
func TestSteadyStateTaskAllocFree(t *testing.T) {
	s := icv.Default()
	s.NumThreads = []int{1}
	rt := gomp.NewRuntime(s)
	rt.Parallel(func(th *gomp.Thread) {
		for i := 0; i < 16; i++ {
			th.Task(func(*gomp.Thread) {})
		}
		th.Taskwait()
		avg := testing.AllocsPerRun(allocRuns, func() {
			th.Task(func(*gomp.Thread) {})
			th.Taskwait()
		})
		if avg != 0 {
			t.Errorf("steady-state task spawn+complete: %v allocs/op, want 0", avg)
		}
	})
}

func TestSteadyStateTaskDependAllocFree(t *testing.T) {
	s := icv.Default()
	s.NumThreads = []int{1}
	rt := gomp.NewRuntime(s)
	var x int
	rt.Parallel(func(th *gomp.Thread) {
		for i := 0; i < 16; i++ {
			th.Task(func(*gomp.Thread) {}, gomp.DependInOut(&x))
		}
		th.Taskwait()
		avg := testing.AllocsPerRun(allocRuns, func() {
			th.Task(func(*gomp.Thread) {}, gomp.DependInOut(&x))
			th.Taskwait()
		})
		if avg != 0 {
			t.Errorf("steady-state depend task spawn+complete: %v allocs/op, want 0", avg)
		}
	})
}

// TestSteadyStateTaskloopAllocFree pins the loop-form chunk path: bounds
// ride in the Unit, the body func is shared across chunks, and the implicit
// taskgroup descriptor is recycled per Thread.
func TestSteadyStateTaskloopAllocFree(t *testing.T) {
	s := icv.Default()
	s.NumThreads = []int{1}
	rt := gomp.NewRuntime(s)
	body := func(i int) {}
	rt.Parallel(func(th *gomp.Thread) {
		for i := 0; i < 16; i++ {
			th.Taskloop(64, 16, body)
		}
		avg := testing.AllocsPerRun(allocRuns, func() {
			th.Taskloop(64, 16, body)
		})
		if avg != 0 {
			t.Errorf("steady-state taskloop (64 iters, grainsize 16): %v allocs/op, want 0", avg)
		}
	})
}
