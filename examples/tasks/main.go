// Tasks: explicit tasking on the GoMP runtime — a task-parallel quicksort
// (taskgroup + nested tasks with a sequential cutoff) and a task-recursive
// Fibonacci, the canonical `omp task` demos.
//
//	go run ./examples/tasks
package main

import (
	"fmt"
	"sort"

	gomp "repro"
)

const cutoff = 4096 // below this, sort sequentially (task grain control)

// quicksort sorts a[lo:hi] using tasks for the two partitions.
func quicksort(t *gomp.Thread, a []int, lo, hi int) {
	for hi-lo > cutoff {
		p := partition(a, lo, hi) // Hoare: [lo, p+1) and [p+1, hi)
		// Spawn the smaller side as a task; recurse on the larger
		// in-place (standard depth control).
		if p+1-lo < hi-p-1 {
			lo2, hi2 := lo, p+1
			t.Task(func(tt *gomp.Thread) { quicksort(tt, a, lo2, hi2) })
			lo = p + 1
		} else {
			lo2, hi2 := p+1, hi
			t.Task(func(tt *gomp.Thread) { quicksort(tt, a, lo2, hi2) })
			hi = p + 1
		}
	}
	sort.Ints(a[lo:hi])
}

func partition(a []int, lo, hi int) int {
	pivot := a[lo+(hi-lo)/2]
	i, j := lo, hi-1
	for {
		for a[i] < pivot {
			i++
		}
		for a[j] > pivot {
			j--
		}
		if i >= j {
			return j
		}
		a[i], a[j] = a[j], a[i]
		i++
		j--
	}
}

func fib(t *gomp.Thread, n int) int64 {
	if n < 2 {
		return int64(n)
	}
	if n < 20 { // sequential cutoff
		return fib(t, n-1) + fib(t, n-2)
	}
	var a, b int64
	t.Taskgroup(func() {
		t.Task(func(tt *gomp.Thread) { a = fib(tt, n-1) })
		t.Task(func(tt *gomp.Thread) { b = fib(tt, n-2) })
	})
	return a + b
}

func main() {
	// Quicksort one million pseudo-random ints.
	const n = 1 << 20
	a := make([]int, n)
	x := uint64(88172645463325252)
	for i := range a {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		a[i] = int(x % (1 << 30))
	}
	gomp.Parallel(func(t *gomp.Thread) {
		t.Single(func() {
			t.Taskgroup(func() { quicksort(t, a, 0, n) })
		})
	})
	if sort.IntsAreSorted(a) {
		fmt.Printf("quicksort: %d elements sorted\n", n)
	} else {
		fmt.Println("quicksort: FAILED")
	}

	var f int64
	gomp.Parallel(func(t *gomp.Thread) {
		t.Single(func() { f = fib(t, 30) })
	})
	fmt.Printf("fib(30)  = %d (expected 832040)\n", f)

	// Taskloop: distribute a loop as tasks from a single producer.
	var sum gomp.AtomicInt64
	gomp.Parallel(func(t *gomp.Thread) {
		t.Single(func() {
			t.Taskloop(1000, 64, func(i int) { sum.Add(int64(i)) })
		})
	})
	fmt.Printf("taskloop = %d (expected 499500)\n", sum.Load())
}
