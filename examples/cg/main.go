// CG: solve the NPB conjugate-gradient benchmark through the public API and
// print the NPB-style verification report for all three implementations —
// including the Reference path that calls the simulated Fortran kernels
// through the interop registry (paper §3.1).
//
//	go run ./examples/cg [-class S]
package main

import (
	"flag"
	"fmt"
	"time"

	gomp "repro"
	"repro/internal/npb"
)

func main() {
	class := flag.String("class", "S", "problem class: S, W, A, B")
	flag.Parse()
	cls, err := npb.ParseClass(*class)
	if err != nil {
		fmt.Println(err)
		return
	}

	fmt.Printf("building CG class %s matrix...\n", cls)
	start := time.Now()
	d := npb.BuildCG(cls)
	fmt.Printf("%v (built in %.2fs)\n\n", d, time.Since(start).Seconds())

	threads := gomp.MaxThreads()
	run := func(name string, f func() npb.CGResult) {
		start := time.Now()
		res := f()
		fmt.Printf("%-22s zeta = %.13f  rnorm = %.2e  %-12s %.3fs\n",
			name, res.Zeta, res.RNorm, res.Status, time.Since(start).Seconds())
	}
	run("serial", d.RunSerial)
	run("reference (goroutines", func() npb.CGResult { return d.RunRef(threads) })
	run("gomp (OpenMP runtime)", func() npb.CGResult { return d.RunOMP(gomp.Default()) })
	fmt.Printf("\nreference zeta for class %s: %.13f\n", cls, d.ZetaV)
	fmt.Println("interop symbols:", npb.FortranObjects.Symbols())
}
