// Quickstart: the GoMP API in five constructs — parallel regions, thread
// identity, worksharing loops, schedules and reductions.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math"

	gomp "repro"
)

func main() {
	gomp.SetNumThreads(4)

	// 1. A parallel region: the body runs once per team thread.
	gomp.Parallel(func(t *gomp.Thread) {
		t.Master(func() {
			fmt.Printf("team of %d threads\n", t.NumThreads())
		})
	})

	// 2. A worksharing loop: iterations split across the team
	//    (`omp parallel for`). Closure capture = shared variables.
	n := 1 << 20
	a := make([]float64, n)
	b := make([]float64, n)
	gomp.ParallelFor(n, func(i int, t *gomp.Thread) {
		a[i] = float64(i)
		b[i] = 2.0
	})

	// 3. A reduction: dot product with schedule(static)
	//    (`omp parallel for reduction(+:dot)`).
	var dot float64
	gomp.Parallel(func(t *gomp.Thread) {
		r := gomp.ReduceFor(t, n, gomp.OpSum, func(i int, acc float64) float64 {
			return acc + a[i]*b[i]
		}, gomp.Schedule(gomp.Static, 0))
		t.Master(func() { dot = r })
	})
	want := float64(n) * float64(n-1) // 2·Σi = n(n-1)
	fmt.Printf("dot       = %.0f (expected %.0f)\n", dot, want)

	// 4. Estimate π by midpoint integration of 4/(1+x²) — the classic
	//    OpenMP reduction demo.
	const steps = 5_000_000
	h := 1.0 / steps
	var pi float64
	gomp.Parallel(func(t *gomp.Thread) {
		r := gomp.ReduceFor(t, steps, gomp.OpSum, func(i int, acc float64) float64 {
			x := (float64(i) + 0.5) * h
			return acc + 4/(1+x*x)
		})
		t.Master(func() { pi = r * h })
	})
	fmt.Printf("pi        = %.10f (error %.2e)\n", pi, math.Abs(pi-math.Pi))

	// 5. Max reduction with schedule(dynamic): find the largest element.
	var maxVal float64
	gomp.Parallel(func(t *gomp.Thread) {
		r := gomp.ReduceFor(t, n, gomp.OpMax, func(i int, acc float64) float64 {
			v := math.Sin(float64(i)) * a[i]
			if v > acc {
				return v
			}
			return acc
		}, gomp.Schedule(gomp.Dynamic, 4096))
		t.Master(func() { maxVal = r })
	})
	fmt.Printf("max       = %.3f\n", maxVal)
}
