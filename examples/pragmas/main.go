// The pragmas example: source.go.txt carries the OpenMP directives and
// main.go is gompcc's output for it (regenerate with:
// go run ./cmd/gompcc -o examples/pragmas/main.go examples/pragmas/source.go.txt).
// The directives exercise the clause set the paper reports support for —
// parallel/for, shared (implicit), private, firstprivate, schedule,
// reduction — plus single, critical and barrier.
package main

import gomp "repro"

import "fmt"

func main() {
	n := 1 << 16
	a := make([]float64, n)
	b := make([]float64, n)

	scale := 2.0
	offset := 1.0
	gomp.Parallel(func(__omp_t *gomp.Thread) {
		{
			scale := scale
			_ = scale
			__omp_loop := gomp.Loop{Begin: int64(0), End: int64(n), Step: int64(1)}
			__omp_t.ForLoop(__omp_loop, func(__omp_i int64) {
				i := int(__omp_i)
				_ = i

				a[i] = scale * float64(i)
				b[i] = offset

			}, gomp.Schedule(gomp.Static, 0))
		}
	})

	dot := 0.0
	count := 0
	gomp.Parallel(func(__omp_t *gomp.Thread) {
		{
			__omp_red_dot := &dot
			dot := gomp.Zero(dot)
			_ = dot
			__omp_red_count := &count
			count := gomp.Zero(count)
			_ = count
			__omp_loop := gomp.Loop{Begin: int64(0), End: int64(n), Step: int64(1)}
			__omp_t.ForLoop(__omp_loop, func(__omp_i int64) {
				i := int(__omp_i)
				_ = i

				dot += a[i] * b[i]
				count++

			}, gomp.Schedule(gomp.Guided, 64), gomp.NoWait())
			__omp_t.Critical("\x00omp.reduction", func() {
				*__omp_red_dot += dot
				*__omp_red_count += count
			})
			__omp_t.Barrier()
		}
	})
	fmt.Printf("dot = %.0f over %d elements\n", dot, count)

	biggest := 0.0
	gomp.Parallel(func(__omp_t *gomp.Thread) {
		{
			__omp_red_biggest := &biggest
			biggest := gomp.Smallest(biggest)
			_ = biggest
			__omp_loop := gomp.Loop{Begin: int64(0), End: int64(n), Step: int64(1)}
			__omp_t.ForLoop(__omp_loop, func(__omp_i int64) {
				i := int(__omp_i)
				_ = i

				if a[i] > biggest {
					biggest = a[i]
				}

			}, gomp.Schedule(gomp.Dynamic, 256), gomp.NoWait())
			__omp_t.Critical("\x00omp.reduction", func() {
				if biggest > *__omp_red_biggest {
					*__omp_red_biggest = biggest
				}
			})
			__omp_t.Barrier()
		}
	})
	fmt.Printf("max = %.0f\n", biggest)

	sum := 0.0
	gomp.Parallel(func(__omp_t *gomp.Thread) {

		tmp := 0.0
		{
			tmp := gomp.Zero(tmp)
			_ = tmp
			__omp_loop := gomp.Loop{Begin: int64(0), End: int64(n), Step: int64(1)}
			__omp_t.ForLoop(__omp_loop, func(__omp_i int64) {
				i := int(__omp_i)
				_ = i

				tmp = a[i] * 0.5
				b[i] = tmp

			}, gomp.NoWait())
		}
		__omp_t.Barrier()
		__omp_t.Critical("total", func() {
			sum += b[0] + b[n-1]
		})
		__omp_t.Single(func() {

			fmt.Printf("sum of ends = %.1f\n", sum)

		})

	})
}
