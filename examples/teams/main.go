// Teams: the OpenMP 5 teams/distribute constructs (host fallback) — a
// league of teams block-partitions a big reduction, each team worksharing
// its block, plus a tracing demo showing the OMPT-analog event stream.
//
//	go run ./examples/teams
package main

import (
	"fmt"

	gomp "repro"
)

func main() {
	const n = 1 << 22

	// distribute parallel for across a league of 4 teams: each team gets
	// a contiguous block and workshares it over its own threads.
	partial := make([]float64, 4)
	gomp.Teams(4, func(tc *gomp.TeamsCtx) {
		var teamSum gomp.AtomicFloat64
		tc.DistributeParallelFor(n, func(i int, t *gomp.Thread) {
			_ = t
		}, gomp.NumThreads(2))
		// Per-team reduction over the same block, through the runtime.
		lo, hi := blockOf(tc, n)
		tc.Parallel(func(t *gomp.Thread) {
			s := gomp.ReduceForLoop(t, gomp.Loop{Begin: int64(lo), End: int64(hi), Step: 1},
				gomp.OpSum, func(i int64, acc float64) float64 {
					return acc + 1.0/float64(i+1)
				})
			t.Master(func() { teamSum.Add(s) })
		}, gomp.NumThreads(2))
		partial[tc.TeamNum()] = teamSum.Load()
	})
	var harmonic float64
	for g, p := range partial {
		fmt.Printf("team %d partial = %.6f\n", g, p)
		harmonic += p
	}
	// H(n) ≈ ln n + γ: 22·ln2 + 0.577216 = 15.826936.
	fmt.Printf("H(%d) = %.6f (expected ≈ 15.826936)\n", n, harmonic)

	// Tracing: record the event stream of a small region.
	rec := gomp.NewTraceRecorder()
	gomp.SetTraceHandler(rec.Handle)
	gomp.Parallel(func(t *gomp.Thread) {
		t.For(64, func(i int) {}, gomp.Schedule(gomp.Dynamic, 8))
		t.Critical("demo", func() {})
	}, gomp.NumThreads(4))
	gomp.Quiesce() // settle trailing barrier exits before detaching
	gomp.SetTraceHandler(nil)
	fmt.Printf("\ntrace of one region (4 threads, dynamic loop, critical):\n%s", rec.Summary())
}

// blockOf mirrors the league's block partition for the manual reduction.
func blockOf(tc *gomp.TeamsCtx, n int) (int, int) {
	teams := tc.NumTeams()
	small, extra := n/teams, n%teams
	g := tc.TeamNum()
	if g < extra {
		lo := g * (small + 1)
		return lo, lo + small + 1
	}
	lo := extra*(small+1) + (g-extra)*small
	return lo, lo + small
}
