// Mandelbrot: the paper's imbalanced workload. Renders an ASCII view and
// compares schedule(static) against schedule(dynamic) on the row loop —
// the imbalance makes dynamic win, which is the reason the schedule clause
// exists (ablation A2).
//
//	go run ./examples/mandelbrot [-size 768]
package main

import (
	"flag"
	"fmt"
	"time"

	gomp "repro"
	"repro/internal/icv"
	"repro/internal/mandelbrot"
)

func main() {
	size := flag.Int("size", 768, "grid size")
	flag.Parse()

	// ASCII art first: a coarse render through the public API.
	const cols, rows = 78, 24
	grid := make([][]byte, rows)
	gomp.ParallelFor(rows, func(y int, t *gomp.Thread) {
		line := make([]byte, cols)
		for x := 0; x < cols; x++ {
			cr := -2.0 + 2.5*float64(x)/cols
			ci := -1.25 + 2.5*float64(y)/rows
			var zr, zi float64
			n := 0
			for ; n < 64; n++ {
				zr, zi = zr*zr-zi*zi+cr, 2*zr*zi+ci
				if zr*zr+zi*zi > 4 {
					break
				}
			}
			line[x] = " .:-=+*#%@"[min(n*10/65, 9)]
		}
		grid[y] = line
	}, gomp.Schedule(gomp.Dynamic, 1))
	for _, line := range grid {
		fmt.Println(string(line))
	}

	// Schedule comparison on the full-size render.
	spec := mandelbrot.DefaultSpec(*size)
	rt := gomp.Default()
	serialStart := time.Now()
	want := mandelbrot.Serial(spec)
	serialT := time.Since(serialStart)
	fmt.Printf("\n%dx%d, maxIter %d, %d threads (serial: %.3fs)\n",
		spec.Width, spec.Height, spec.MaxIter, rt.MaxThreads(), serialT.Seconds())

	for _, s := range []icv.Schedule{
		{Kind: icv.StaticSched},
		{Kind: icv.StaticSched, Chunk: 1},
		{Kind: icv.DynamicSched, Chunk: 1},
		{Kind: icv.GuidedSched},
		{Kind: icv.StealSched}, // schedule(nonmonotonic:dynamic): work stealing
	} {
		start := time.Now()
		got := mandelbrot.OMPSchedule(rt, spec, s)
		d := time.Since(start)
		ok := "ok"
		if got != want {
			ok = "MISMATCH"
		}
		fmt.Printf("  schedule(%-21s) %8.3fs  %s\n", s, d.Seconds(), ok)
	}

	// collapse(2): flatten the (row, column) nest so the stealer balances
	// at pixel granularity — the `omp parallel for collapse(2)
	// schedule(nonmonotonic:dynamic)` shape.
	start := time.Now()
	got := mandelbrot.OMPCollapsed(rt, spec, icv.Schedule{Kind: icv.StealSched})
	d := time.Since(start)
	ok := "ok"
	if got != want {
		ok = "MISMATCH"
	}
	fmt.Printf("  collapse(2) schedule(%-21s) %8.3fs  %s\n", icv.Schedule{Kind: icv.StealSched}, d.Seconds(), ok)
}
