// Stencil: 2-D heat diffusion — the CFD-adjacent workload class the
// paper's introduction motivates (the NPB kernels are "representative of
// CFD applications"), in two flavours:
//
//   - Jacobi: u' = ¼(N+S+E+W) with fixed hot boundary, one worksharing
//     loop per sweep and a max-reduction for the convergence residual.
//   - Gauss–Seidel smoothing via doacross: each cell reads its
//     already-updated north and west neighbours, so tiles pipeline through
//     ordered(2) + depend(sink)/depend(source) (Thread.ForDoacross) — a
//     cross-iteration dependence no plain worksharing loop can express.
//
//	go run ./examples/stencil [-n 512] [-iters 500] [-gs 4]
package main

import (
	"flag"
	"fmt"
	"math"
	"time"

	gomp "repro"
)

func main() {
	n := flag.Int("n", 512, "grid side length")
	iters := flag.Int("iters", 500, "max sweeps")
	tol := flag.Float64("tol", 1e-4, "convergence residual")
	gs := flag.Int("gs", 4, "Gauss–Seidel doacross smoothing sweeps after Jacobi")
	flag.Parse()
	size := *n

	u := make([]float64, size*size)
	v := make([]float64, size*size)
	// Hot top edge, cold elsewhere.
	for x := 0; x < size; x++ {
		u[x] = 100
		v[x] = 100
	}

	start := time.Now()
	sweeps := 0
	for it := 0; it < *iters; it++ {
		var residual float64
		gomp.Parallel(func(t *gomp.Thread) {
			// Interior rows split across the team; the residual is a
			// max-reduction over the team's rows.
			r := gomp.ReduceFor(t, size-2, gomp.OpMax, func(row int, acc float64) float64 {
				y := row + 1
				base := y * size
				for x := 1; x < size-1; x++ {
					i := base + x
					next := 0.25 * (u[i-1] + u[i+1] + u[i-size] + u[i+size])
					v[i] = next
					if d := math.Abs(next - u[i]); d > acc {
						acc = d
					}
				}
				return acc
			}, gomp.Schedule(gomp.Static, 0))
			t.Master(func() { residual = r })
		})
		u, v = v, u
		sweeps++
		if residual < *tol {
			break
		}
	}
	elapsed := time.Since(start)

	// Gauss–Seidel smoothing: cell (y,x) reads the already-updated north
	// and west neighbours, a cross-iteration dependence. The tile grid runs
	// as a doacross loop — `ordered(2)` with `depend(sink: bi-1,bj)`,
	// `depend(sink: bi,bj-1)` and `depend(source)` — so the wavefront of
	// ready tiles pipelines across the team with no barrier per diagonal.
	const tileSide = 64
	nb := (size - 2 + tileSide - 1) / tileSide
	tiles := []gomp.Loop{{Begin: 0, End: int64(nb), Step: 1}, {Begin: 0, End: int64(nb), Step: 1}}
	gsStart := time.Now()
	for sweep := 0; sweep < *gs; sweep++ {
		gomp.Parallel(func(t *gomp.Thread) {
			t.ForDoacross(tiles, func(ix []int64, d *gomp.DoacrossCtx) {
				bi, bj := int(ix[0]), int(ix[1])
				d.Wait(ix[0]-1, ix[1]) // north tile's updates
				d.Wait(ix[0], ix[1]-1) // west tile's updates
				ylo, yhi := 1+bi*tileSide, min(size-1, 1+(bi+1)*tileSide)
				xlo, xhi := 1+bj*tileSide, min(size-1, 1+(bj+1)*tileSide)
				for y := ylo; y < yhi; y++ {
					base := y * size
					for x := xlo; x < xhi; x++ {
						i := base + x
						u[i] = 0.25 * (u[i-1] + u[i+1] + u[i-size] + u[i+size])
					}
				}
				d.Post()
			})
		})
	}
	gsElapsed := time.Since(gsStart)

	// Checksum: total heat (diffusion conserves boundary-driven totals
	// deterministically for a fixed sweep count).
	var heat float64
	gomp.Parallel(func(t *gomp.Thread) {
		h := gomp.ReduceFor(t, size*size, gomp.OpSum, func(i int, acc float64) float64 {
			return acc + u[i]
		})
		t.Master(func() { heat = h })
	})

	fmt.Printf("grid %dx%d, %d Jacobi sweeps in %.3fs (%.1f Msite-updates/s)\n",
		size, size, sweeps, elapsed.Seconds(),
		float64(sweeps)*float64((size-2)*(size-2))/elapsed.Seconds()/1e6)
	fmt.Printf("%d Gauss–Seidel doacross sweeps (%dx%d tiles) in %.3fs\n", *gs, nb, nb, gsElapsed.Seconds())
	fmt.Printf("total heat = %.3f\n", heat)
	fmt.Printf("centre temperature = %.4f\n", u[(size/2)*size+size/2])
}
