// Stencil: 2-D Jacobi heat diffusion — the CFD-adjacent workload class the
// paper's introduction motivates (the NPB kernels are "representative of
// CFD applications"). Iterates u' = ¼(N+S+E+W) with fixed hot boundary,
// using one worksharing loop per sweep and a max-reduction for the
// convergence residual.
//
//	go run ./examples/stencil [-n 512] [-iters 500]
package main

import (
	"flag"
	"fmt"
	"math"
	"time"

	gomp "repro"
)

func main() {
	n := flag.Int("n", 512, "grid side length")
	iters := flag.Int("iters", 500, "max sweeps")
	tol := flag.Float64("tol", 1e-4, "convergence residual")
	flag.Parse()
	size := *n

	u := make([]float64, size*size)
	v := make([]float64, size*size)
	// Hot top edge, cold elsewhere.
	for x := 0; x < size; x++ {
		u[x] = 100
		v[x] = 100
	}

	start := time.Now()
	sweeps := 0
	for it := 0; it < *iters; it++ {
		var residual float64
		gomp.Parallel(func(t *gomp.Thread) {
			// Interior rows split across the team; the residual is a
			// max-reduction over the team's rows.
			r := gomp.ReduceFor(t, size-2, gomp.OpMax, func(row int, acc float64) float64 {
				y := row + 1
				base := y * size
				for x := 1; x < size-1; x++ {
					i := base + x
					next := 0.25 * (u[i-1] + u[i+1] + u[i-size] + u[i+size])
					v[i] = next
					if d := math.Abs(next - u[i]); d > acc {
						acc = d
					}
				}
				return acc
			}, gomp.Schedule(gomp.Static, 0))
			t.Master(func() { residual = r })
		})
		u, v = v, u
		sweeps++
		if residual < *tol {
			break
		}
	}
	elapsed := time.Since(start)

	// Checksum: total heat (diffusion conserves boundary-driven totals
	// deterministically for a fixed sweep count).
	var heat float64
	gomp.Parallel(func(t *gomp.Thread) {
		h := gomp.ReduceFor(t, size*size, gomp.OpSum, func(i int, acc float64) float64 {
			return acc + u[i]
		})
		t.Master(func() { heat = h })
	})

	fmt.Printf("grid %dx%d, %d sweeps in %.3fs (%.1f Msite-updates/s)\n",
		size, size, sweeps, elapsed.Seconds(),
		float64(sweeps)*float64((size-2)*(size-2))/elapsed.Seconds()/1e6)
	fmt.Printf("total heat = %.3f\n", heat)
	fmt.Printf("centre temperature = %.4f\n", u[(size/2)*size+size/2])
}
