// Wavefront: task dependencies on the GoMP runtime — a blocked 2D
// Gauss–Seidel sweep where tile (i,j) waits for the tiles above and to the
// left via depend clauses, the canonical dependency-structured workload
// (the same pattern as blocked Cholesky/LU factorisation panels). Also
// demonstrates the final clause as a task-recursion cutoff and priorities.
//
//	go run ./examples/wavefront
//
// The directive-comment spelling (what cmd/gompcc lowers to exactly this
// code) would be:
//
//	//omp task depend(in: tok[i-1][j]) depend(in: tok[i][j-1]) depend(inout: tok[i][j]) priority(1)
package main

import (
	"fmt"
	"time"

	gomp "repro"
)

const (
	n      = 1536 // grid edge
	block  = 128  // tile edge
	sweeps = 4
)

func newGrid() []float64 {
	g := make([]float64, n*n)
	for i := range g {
		g[i] = float64(i%97) / 97.0
	}
	return g
}

// tile relaxes one block: cell (i,j) from its updated north/west neighbours.
func tile(g []float64, bi, bj int) {
	rlo, rhi := 1+bi*block, min(n, 1+(bi+1)*block)
	clo, chi := 1+bj*block, min(n, 1+(bj+1)*block)
	for i := rlo; i < rhi; i++ {
		for j := clo; j < chi; j++ {
			g[i*n+j] = 0.25 * (2*g[i*n+j] + g[(i-1)*n+j] + g[i*n+j-1])
		}
	}
}

func checksum(g []float64) float64 {
	s := 0.0
	for _, v := range g {
		s += v
	}
	return s
}

func serial(g []float64) {
	nb := (n - 1 + block - 1) / block
	for s := 0; s < sweeps; s++ {
		for bi := 0; bi < nb; bi++ {
			for bj := 0; bj < nb; bj++ {
				tile(g, bi, bj)
			}
		}
	}
}

// tasked runs the same sweeps as one task DAG: one task per tile per sweep,
// ordered purely by depend clauses on per-tile tokens. Tiles on the main
// diagonal get a higher priority — they unlock two successors each, so
// scheduling them early widens the front.
func tasked(g []float64) {
	nb := (n - 1 + block - 1) / block
	tok := make([]byte, nb*nb)
	gomp.Parallel(func(t *gomp.Thread) {
		if t.Num() != 0 {
			return // everyone else executes tasks at the region barrier
		}
		for s := 0; s < sweeps; s++ {
			for bi := 0; bi < nb; bi++ {
				for bj := 0; bj < nb; bj++ {
					bi, bj := bi, bj
					opts := make([]gomp.TaskOption, 0, 4)
					if bi > 0 {
						opts = append(opts, gomp.DependIn(&tok[(bi-1)*nb+bj]))
					}
					if bj > 0 {
						opts = append(opts, gomp.DependIn(&tok[bi*nb+bj-1]))
					}
					opts = append(opts, gomp.DependInOut(&tok[bi*nb+bj]))
					if bi == bj {
						opts = append(opts, gomp.Priority(1))
					}
					t.Task(func(*gomp.Thread) { tile(g, bi, bj) }, opts...)
				}
			}
		}
	})
}

// fib shows the final clause: below the cutoff the tasks collapse into
// plain recursion on the encountering thread (undeferred + included), the
// spec's device for taming task-spawn overhead.
func fib(t *gomp.Thread, k int) int {
	if k < 2 {
		return k
	}
	var a, b int
	t.Task(func(tt *gomp.Thread) { a = fib(tt, k-1) }, gomp.Final(k-1 < 16))
	t.Task(func(tt *gomp.Thread) { b = fib(tt, k-2) }, gomp.Final(k-2 < 16))
	t.Taskwait()
	return a + b
}

func main() {
	ser := newGrid()
	t0 := time.Now()
	serial(ser)
	serT := time.Since(t0)

	par := newGrid()
	t0 = time.Now()
	tasked(par)
	parT := time.Since(t0)

	ok := "MATCH"
	if checksum(ser) != checksum(par) {
		ok = "MISMATCH"
	}
	fmt.Printf("wavefront %dx%d, %d sweeps, %dx%d tiles\n", n, n, sweeps, block, block)
	fmt.Printf("  serial: %8.1f ms\n", serT.Seconds()*1e3)
	fmt.Printf("  tasks:  %8.1f ms  (%.2fx, %d threads, checksums %s)\n",
		parT.Seconds()*1e3, serT.Seconds()/parT.Seconds(), gomp.MaxThreads(), ok)

	var f int
	gomp.Parallel(func(t *gomp.Thread) {
		t.Master(func() { f = fib(t, 27) })
	})
	fmt.Printf("fib(27) with final-clause cutoff: %d\n", f)
}
