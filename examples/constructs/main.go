// The constructs example: source.go.txt carries the directives and main.go
// is gompcc's output (regenerate with:
// go run ./cmd/gompcc -o examples/constructs/main.go examples/constructs/source.go.txt).
// It exercises the constructs the pragmas example does not: sections,
// ordered, collapse(2), lastprivate, single copyprivate, atomic, master,
// task, taskwait and taskloop.
package main

import gomp "repro"

import "fmt"

func main() {
	n := 64

	// collapse(2): a flattened 2-D loop nest.
	grid := make([]int, n*n)
	gomp.Parallel(func(__omp_t *gomp.Thread) {
		{
			__omp_l1 := gomp.Loop{Begin: int64(0), End: int64(n), Step: int64(1)}
			__omp_l2 := gomp.Loop{Begin: int64(0), End: int64(n), Step: int64(1)}
			__omp_n2 := __omp_l2.TripCount()
			__omp_t.ForLoop(gomp.Loop{Begin: 0, End: __omp_l1.TripCount() * __omp_n2, Step: 1}, func(__omp_i int64) {
				i := int(__omp_l1.Iteration(__omp_i / __omp_n2))
				_ = i
				j := int(__omp_l2.Iteration(__omp_i % __omp_n2))
				_ = j

				grid[i*n+j] = i + j

			}, gomp.Schedule(gomp.Dynamic, 128))
		}
	})
	corners := grid[0] + grid[n-1] + grid[(n-1)*n] + grid[n*n-1]
	fmt.Printf("collapse: corners = %d\n", corners)

	// ordered: loop iterations print in order despite dynamic schedule.
	trace := make([]int, 0, 8)
	gomp.Parallel(func(__omp_t *gomp.Thread) {

		{
			__omp_loop := gomp.Loop{Begin: int64(0), End: int64(8), Step: int64(1)}
			__omp_t.ForOrdered(int(__omp_loop.TripCount()), func(__omp_k int, __omp_ord *gomp.OrderedCtx) {
				__omp_i := __omp_loop.Iteration(int64(__omp_k))
				_ = __omp_ord
				i := int(__omp_i)
				_ = i

				v := i * i
				__omp_ord.Do(func() {
					trace = append(trace, v)
				})

			}, gomp.Schedule(gomp.Dynamic, 1))
		}

	})
	fmt.Printf("ordered:  trace = %v\n", trace)

	// lastprivate: the value from the logically last iteration survives.
	last := -1
	gomp.Parallel(func(__omp_t *gomp.Thread) {
		{
			__omp_last_last := &last
			last := gomp.Zero(last)
			_ = last
			__omp_loop := gomp.Loop{Begin: int64(0), End: int64(n), Step: int64(1)}
			__omp_lastval := __omp_loop.Iteration(__omp_loop.TripCount() - 1)
			__omp_t.ForLoop(__omp_loop, func(__omp_i int64) {
				i := int(__omp_i)
				_ = i

				last = i * 2

				if __omp_i == __omp_lastval {
					*__omp_last_last = last
				}
			})
		}
	})
	fmt.Printf("lastprivate: last = %d\n", last)

	// sections: three independent units, plus atomic updates.
	total := 0
	gomp.Parallel(func(__omp_t *gomp.Thread) {

		{
			__omp_t.Sections([]func(){
				func() {
					{
						__omp_t.Critical("\x00omp.atomic", func() {
							total += 1
						})
					}
				},
				func() {
					{
						__omp_t.Critical("\x00omp.atomic", func() {
							total += 10
						})
					}
				},
				func() {
					{
						__omp_t.Critical("\x00omp.atomic", func() {
							total += 100
						})
					}
				},
			})
		}
		__omp_t.Master(func() {
			fmt.Printf("sections: total = %d\n", total)
		})

	})

	// single copyprivate: one thread computes, everyone receives.
	seed := 0
	sum := 0
	gomp.Parallel(func(__omp_t *gomp.Thread) {

		{
			__omp_cp := __omp_t.SingleCopy(func() any {

				seed = 41

				return []any{seed}
			}).([]any)
			gomp.CopyAssign(&seed, __omp_cp[0])
		}
		__omp_t.Critical("", func() {
			sum += seed
		})
		__omp_t.Barrier()
		__omp_t.Master(func() {
			fmt.Printf("copyprivate: every thread saw seed+1 = %d\n", seed+1)
		})

	})
	_ = sum

	// task + taskwait and taskloop.
	done := 0
	squares := 0
	gomp.Parallel(func(__omp_t *gomp.Thread) {

		__omp_t.Single(func() {

			{
				__omp_t.Task(func(__omp_t *gomp.Thread) {

					__omp_t.Critical("\x00omp.atomic", func() {
						done += 2
					})

				})
			}
			{
				__omp_t.Task(func(__omp_t *gomp.Thread) {

					__omp_t.Critical("\x00omp.atomic", func() {
						done += 3
					})

				})
			}
			__omp_t.Taskwait()
			{
				__omp_loop := gomp.Loop{Begin: int64(1), End: int64((10) + 1), Step: int64(1)}
				__omp_t.Taskloop(int(__omp_loop.TripCount()), 4, func(__omp_k int) {
					i := int(__omp_loop.Iteration(int64(__omp_k)))
					_ = i

					__omp_t.Critical("\x00omp.atomic", func() {
						squares += i * i
					})

				})
			}

		})

	})
	fmt.Printf("tasks: done = %d, taskloop squares = %d\n", done, squares)
}
