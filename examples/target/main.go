// Target offload: Mandelbrot tiles rendered through the device layer.
//
// The image is computed three ways and must agree bit-for-bit:
//
//  1. a serial oracle;
//  2. the `target teams distribute parallel for` directive — lowered by
//     gompcc into a closure kernel on the host device;
//  3. tile-by-tile offload of a *named* kernel (gomp.RegisterKernel) to
//     every registered device — including the subprocess backends, where
//     the worker child recomputes each tile in its own address space and
//     map(from:) copies the pixels back over the pipe.
//
// Device selection is purely device(n) / OMP_DEFAULT_DEVICE; the pixel
// math is integer escape-time iteration, so every backend is bit-identical.
//
//	go run ./examples/target
//	OMP_DEFAULT_DEVICE=1 OMP_TARGET_OFFLOAD=mandatory go run ./examples/target
package main

import (
	"fmt"
	"os"

	gomp "repro"
)

const (
	width, height = 256, 256
	maxIter       = 256
	tileRows      = 32
)

func init() {
	// Registered by name so the kernel is executable on subprocess
	// devices: parent and worker run the same binary, so the name resolves
	// in both registries — the analog of a compiler-registered device image.
	gomp.RegisterKernel("mandel.tile", tileKernel)
}

// iterAt is the escape-time iteration count for pixel (x, y): pure
// float64/integer arithmetic with a fixed evaluation order, so every
// backend computes the same bits.
func iterAt(x, y int) int32 {
	cr := -2.0 + 2.5*float64(x)/float64(width)
	ci := -1.25 + 2.5*float64(y)/float64(height)
	zr, zi := 0.0, 0.0
	var n int32
	for ; n < maxIter; n++ {
		zr, zi = zr*zr-zi*zi+cr, 2*zr*zi+ci
		if zr*zr+zi*zi > 4 {
			break
		}
	}
	return n
}

// tileKernel renders rows [y0, y0+rows) into px (rows*width pixels).
// meta ships the tile coordinates; map clauses carry slices, and the
// kernel sees the device-side copies through its data environment.
func tileKernel(rt *gomp.Runtime, cfg gomp.Launch, env *gomp.TargetEnv) {
	px := env.Get("px").([]int32)
	meta := env.Get("meta").([]int64)
	y0, rows := int(meta[0]), int(meta[1])
	gomp.TeamsFor(rt, cfg, rows, func(r int, t *gomp.Thread) {
		for x := 0; x < width; x++ {
			px[r*width+x] = iterAt(x, y0+r)
		}
	})
}

// renderOn offloads the image tile by tile to device dev. map(to:) ships
// the tile metadata, map(from:) brings the pixels back.
func renderOn(dev int) ([]int32, error) {
	img := make([]int32, width*height)
	for y0 := 0; y0 < height; y0 += tileRows {
		px := img[y0*width : (y0+tileRows)*width]
		meta := []int64{int64(y0), tileRows}
		if err := gomp.Target(dev, "mandel.tile", gomp.Launch{NumTeams: 2, ThreadLimit: 2},
			gomp.MapTo("meta", meta),
			gomp.MapFrom("px", px)); err != nil {
			return nil, err
		}
	}
	return img, nil
}

// checksum is FNV-1a over the pixels, printed so runs are comparable.
func checksum(img []int32) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range img {
		h ^= uint64(uint32(v))
		h *= 1099511628211
	}
	return h
}

func verify(name string, img, ref []int32) {
	for i := range img {
		if img[i] != ref[i] {
			fmt.Printf("%s: MISMATCH at pixel %d: %d != %d\n", name, i, img[i], ref[i])
			os.Exit(1)
		}
	}
	fmt.Printf("%-28s checksum %016x  (bit-identical)\n", name, checksum(img))
}

func main() {
	// First thing in main: a process spawned as a device worker serves
	// kernels instead of running the demo.
	gomp.WorkerInit()

	// Serial oracle.
	ref := make([]int32, width*height)
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			ref[y*width+x] = iterAt(x, y)
		}
	}
	fmt.Printf("%-28s checksum %016x\n", "serial oracle", checksum(ref))

	// Directive form: gompcc outlines the loop into a closure kernel and
	// workshares the rows across a league of teams on the host device.
	hostPx := make([]int32, width*height)
	{
		__omp_dev := 0
		if __omp_err := gomp.TargetRegion(__omp_dev, gomp.Launch{NumTeams: 4}, func(__omp_rt *gomp.Runtime, __omp_cfg gomp.Launch, __omp_env *gomp.TargetEnv) {
			_, _, _ = __omp_rt, __omp_cfg, __omp_env
			__omp_loop := gomp.Loop{Begin: int64(0), End: int64(height), Step: int64(1)}
			gomp.TeamsFor(__omp_rt, __omp_cfg, int(__omp_loop.TripCount()), func(__omp_k int, __omp_t *gomp.Thread) {
				_ = __omp_t
				y := int(__omp_loop.Iteration(int64(__omp_k)))
				_ = y

				for x := 0; x < width; x++ {
					hostPx[y*width+x] = iterAt(x, y)
				}

			}, gomp.Schedule(gomp.Dynamic, 8))
		}, gomp.MapFrom("hostPx", &hostPx)); __omp_err != nil {
			panic(__omp_err)
		}
	}
	verify("directive (device 0)", hostPx, ref)

	// Named-kernel form, on every registered device: device 0 is the host
	// backend; device 1.. are subprocess workers (GOMP_SUBPROCESS_DEVICES
	// sizes the fleet). Same tiles, same bits, different address spaces.
	for dev := 0; dev < gomp.GetNumDevices(); dev++ {
		img, err := renderOn(dev)
		if err != nil {
			fmt.Printf("device %d: %v\n", dev, err)
			os.Exit(1)
		}
		verify(fmt.Sprintf("tiles on device %d", dev), img, ref)
	}

	// And once more on the default device — OMP_DEFAULT_DEVICE decides
	// where this lands without the code changing.
	img, err := renderOn(gomp.DefaultDeviceID)
	if err != nil {
		fmt.Printf("default device: %v\n", err)
		os.Exit(1)
	}
	verify(fmt.Sprintf("default device (%d)", gomp.GetDefaultDevice()), img, ref)
}
