package gomp

// Generic helpers used by gompcc-generated code to implement data-sharing
// and reduction clauses without type information — the preprocessor runs
// before type checking (like the paper's, which faced the same limitation
// and likewise "overcame it by leveraging generic programming features").
// All helpers infer T from the variable being privatised.

import (
	"repro/internal/reduction"
)

// Zero returns the zero value of v's type: the initialiser for private
// variables and for +, |, ^ reduction accumulators.
func Zero[T any](v T) T {
	var z T
	return z
}

// One returns 1 in v's type: the identity of * reductions.
func One[T Number](v T) T {
	var z T
	return z + 1
}

// Smallest returns the minimum representable value of v's type (or -Inf):
// the identity of max reductions.
func Smallest[T Number](v T) T { return reduction.Identity[T](reduction.Max) }

// Largest returns the maximum representable value of v's type (or +Inf):
// the identity of min reductions.
func Largest[T Number](v T) T { return reduction.Identity[T](reduction.Min) }

// AllOnes returns the all-bits-set value of v's type: the identity of &
// reductions.
func AllOnes[T Number](v T) T { return reduction.Identity[T](reduction.BitAnd) }

// CopyAssign stores a copyprivate-broadcast value into dst, recovering the
// static type from the destination pointer. It panics if the dynamic type
// does not match, which can only happen if generated code is edited by hand.
func CopyAssign[T any](dst *T, v any) { *dst = v.(T) }
